open Devir

type node = {
  bref : Program.bref;
  kind : Block.kind;
  dsod : Stmt.t list;
  term : Term.t;
  sync_locals : string list;
  mutable visits : int;
  mutable taken : int;
  mutable not_taken : int;
  mutable cases : (int64 * string) list;
  mutable itargets : int64 list;
  mutable succs : Program.bref list;
}

type cmd_key = Program.bref * int64

(* Membership keys for the NBTD edge lists.  The lists themselves stay in
   insertion order on the nodes; this auxiliary table makes the
   once-per-observation membership test O(1) instead of scanning the list
   on every single visit (quadratic over a training log). *)
type edge =
  | E_succ of Program.bref * Program.bref
  | E_case of Program.bref * int64 * string
  | E_itarget of Program.bref * int64

(* Where a spec's learned content came from.  [Trained] is the one-shot
   paper pipeline; the others are evolution derivations — the revision
   counter orders them so the rollout ladder can pin and roll back. *)
type provenance = Trained | Retrained of int | Minimized | Merged

type t = {
  program : Program.t;
  selection : Selection.t;
  mutable revision : int;
  mutable provenance : provenance;
  nodes : (Program.bref, node) Hashtbl.t;
  cmd_table : (cmd_key, (Program.bref, unit) Hashtbl.t) Hashtbl.t;
  no_cmd : (Program.bref, unit) Hashtbl.t;
  seen : (edge, unit) Hashtbl.t;
  removed : (Program.bref, unit) Hashtbl.t;
      (** Brefs ever removed by {!reduce} — makes the [reduced] counter
          idempotent across repeated reductions of the same blocks. *)
  mutable reduced : int;
}

let create ~program ~selection =
  {
    program;
    selection;
    revision = 0;
    provenance = Trained;
    nodes = Hashtbl.create 128;
    cmd_table = Hashtbl.create 32;
    no_cmd = Hashtbl.create 64;
    seen = Hashtbl.create 256;
    removed = Hashtbl.create 16;
    reduced = 0;
  }

let first_sight t edge =
  if Hashtbl.mem t.seen edge then false
  else begin
    Hashtbl.add t.seen edge ();
    true
  end

(* DSOD lifting: keep statements that write device state (directly or by
   DMA), plus the definitions the replay needs (locals, guest loads, host
   values).  Responses and guest stores do not change device state; guest
   stores must also never run inside the checker. *)
let lift_dsod stmts =
  List.filter
    (fun (stmt : Stmt.t) ->
      match stmt with
      | Stmt.Set_field _ | Stmt.Set_buf _ | Stmt.Set_local _ | Stmt.Buf_fill _
      | Stmt.Copy_from_guest _ | Stmt.Copy_to_guest _ | Stmt.Read_guest _
      | Stmt.Host_value _ ->
        true
      | Stmt.Respond _ | Stmt.Write_guest _ | Stmt.Note _ -> false)
    stmts

let sync_locals_of stmts =
  List.filter_map
    (fun (stmt : Stmt.t) ->
      match stmt with
      | Stmt.Host_value { local; _ } -> Some local
      | _ -> None)
    stmts

let get_node t bref =
  match Hashtbl.find_opt t.nodes bref with
  | Some n -> n
  | None ->
    let block = Program.find_block t.program bref in
    let n =
      {
        bref;
        kind = block.Block.kind;
        dsod = lift_dsod block.Block.stmts;
        term = block.Block.term;
        sync_locals = sync_locals_of block.Block.stmts;
        visits = 0;
        taken = 0;
        not_taken = 0;
        cases = [];
        itargets = [];
        succs = [];
      }
    in
    Hashtbl.add t.nodes bref n;
    n

(* Command context during construction (and mirrored by the checker). *)
type ctx = Ctx_none | Ctx_cmd of cmd_key

let access_set t key =
  match Hashtbl.find_opt t.cmd_table key with
  | Some set -> set
  | None ->
    let set = Hashtbl.create 16 in
    Hashtbl.add t.cmd_table key set;
    set

let record_access t ctx bref =
  match ctx with
  | Ctx_none -> Hashtbl.replace t.no_cmd bref ()
  | Ctx_cmd key -> Hashtbl.replace (access_set t key) bref ()

(* Restore one interaction's full block path from its observation entries
   and fold it into the graph.  Returns the command context after the
   interaction. *)
let add_interaction t ctx (i : Ds_log.interaction) =
  let ctx = ref ctx in
  let entries = ref i.entries in
  let pop_entry (bref : Program.bref) =
    match !entries with
    | e :: rest when Program.bref_equal e.Interp.Event.block bref ->
      entries := rest;
      Some e
    | _ -> None
  in
  let prev : node option ref = ref None in
  let link (n : node) =
    (match !prev with
    | Some p ->
      if first_sight t (E_succ (p.bref, n.bref)) then
        p.succs <- p.succs @ [ n.bref ]
    | None -> ());
    prev := Some n
  in
  (* Walk the source from the handler entry, consuming observation entries
     at the observation points; gaps are deterministic. *)
  let rec walk (bref : Program.bref) stack fuel =
    if fuel <= 0 then ()
    else
      let n = get_node t bref in
      n.visits <- n.visits + 1;
      record_access t !ctx bref;
      link n;
      let sibling label : Program.bref = { handler = bref.handler; label } in
      let entry = pop_entry bref in
      match n.term with
      | Term.Goto l ->
        if n.kind = Block.Cmd_end then ctx := Ctx_none;
        walk (sibling l) stack (fuel - 1)
      | Term.Halt -> (
        if n.kind = Block.Cmd_end then ctx := Ctx_none;
        match stack with
        | cont :: rest -> walk cont rest (fuel - 1)
        | [] -> ())
      | Term.Branch (_, if_taken, if_not) -> (
        match entry with
        | Some { Interp.Event.outcome = Interp.Event.O_taken; _ } ->
          n.taken <- n.taken + 1;
          if n.kind = Block.Cmd_end then ctx := Ctx_none;
          walk (sibling if_taken) stack (fuel - 1)
        | Some { Interp.Event.outcome = Interp.Event.O_not_taken; _ } ->
          n.not_taken <- n.not_taken + 1;
          if n.kind = Block.Cmd_end then ctx := Ctx_none;
          walk (sibling if_not) stack (fuel - 1)
        | _ -> (* truncated log (trapped interaction): stop the path *) ())
      | Term.Switch (_, _, _) -> (
        match entry with
        | Some { Interp.Event.outcome = Interp.Event.O_case (v, dest); _ } ->
          if first_sight t (E_case (bref, v, dest)) then
            n.cases <- n.cases @ [ (v, dest) ];
          if n.kind = Block.Cmd_decision then ctx := Ctx_cmd (bref, v);
          if n.kind = Block.Cmd_end then ctx := Ctx_none;
          walk (sibling dest) stack (fuel - 1)
        | _ -> ())
      | Term.Icall (_, next) -> (
        match entry with
        | Some { Interp.Event.outcome = Interp.Event.O_icall v; _ } -> (
          if first_sight t (E_itarget (bref, v)) then
            n.itargets <- n.itargets @ [ v ];
          if n.kind = Block.Cmd_end then ctx := Ctx_none;
          let continue_at = sibling next in
          match Program.find_callback t.program v with
          | Some { Program.action = Program.Run_handler callee; _ } ->
            let callee_entry : Program.bref =
              match (Program.find_handler t.program callee).blocks with
              | b :: _ -> { handler = callee; label = b.Block.label }
              | [] -> continue_at
            in
            walk callee_entry (continue_at :: stack) (fuel - 1)
          | Some _ -> walk continue_at stack (fuel - 1)
          | None -> ())
        | _ -> ())
  in
  let entry_bref : Program.bref =
    match (Program.find_handler t.program i.handler).blocks with
    | b :: _ -> { handler = i.handler; label = b.Block.label }
    | [] -> invalid_arg "Es_cfg.add_interaction: empty handler"
  in
  walk entry_bref [] 1_000_000;
  !ctx

let add_log t log =
  let ctx = List.fold_left (fun ctx i -> add_interaction t ctx i) Ctx_none log in
  ignore ctx

let add_logs t logs = List.iter (add_log t) logs

let program t = t.program
let selection t = t.selection
let revision t = t.revision
let provenance t = t.provenance

let set_version t ~revision ~provenance =
  if revision < 0 then invalid_arg "Es_cfg.set_version: negative revision";
  t.revision <- revision;
  t.provenance <- provenance

let provenance_to_string = function
  | Trained -> "trained"
  | Retrained cases -> Printf.sprintf "retrained:%d" cases
  | Minimized -> "minimized"
  | Merged -> "merged"

let provenance_of_string s =
  match s with
  | "trained" -> Some Trained
  | "minimized" -> Some Minimized
  | "merged" -> Some Merged
  | _ -> (
    match String.split_on_char ':' s with
    | [ "retrained"; n ] -> (
      match int_of_string_opt n with
      | Some cases when cases >= 0 -> Some (Retrained cases)
      | _ -> None)
    | _ -> None)

let node t bref = Hashtbl.find_opt t.nodes bref

let nodes t =
  let all = Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes [] in
  List.sort
    (fun a b ->
      Int64.compare
        (Program.address_of t.program a.bref)
        (Program.address_of t.program b.bref))
    all

let node_count t = Hashtbl.length t.nodes

let entry_of t handler : Program.bref =
  match (Program.find_handler t.program handler).blocks with
  | b :: _ -> { handler; label = b.Block.label }
  | [] -> invalid_arg "Es_cfg.entry_of: empty handler"

let cmd_known t key = Hashtbl.mem t.cmd_table key

let cmd_allows t key bref =
  match Hashtbl.find_opt t.cmd_table key with
  | Some set -> Hashtbl.mem set bref
  | None -> false

let no_cmd_allows t bref = Hashtbl.mem t.no_cmd bref

let cmd_key_compare ((a, va) : cmd_key) ((b, vb) : cmd_key) =
  match Program.bref_compare a b with 0 -> Int64.compare va vb | n -> n

(* Sorted: hash-fold order depends on insertion history (and could change
   across OCaml releases), and these lists feed pp_stats, viz and JSON
   reports — plus the dense command-id assignment both walk engines
   share, which must be reproducible across processes. *)
let commands t =
  List.sort cmd_key_compare
    (Hashtbl.fold (fun key _ acc -> key :: acc) t.cmd_table [])

let sync_points t =
  List.sort
    (fun (a, _) (b, _) -> Program.bref_compare a b)
    (Hashtbl.fold
       (fun bref n acc ->
         if n.sync_locals <> [] then (bref, n.sync_locals) :: acc else acc)
       t.nodes [])

let access_entries t =
  let sorted_members set =
    List.sort Program.bref_compare
      (Hashtbl.fold (fun b () acc -> b :: acc) set [])
  in
  List.map (fun b -> (None, b)) (sorted_members t.no_cmd)
  @ List.concat_map
      (fun key ->
        List.map
          (fun b -> (Some key, b))
          (sorted_members (Hashtbl.find t.cmd_table key)))
      (commands t)

(* Chase a successor through blocks the walker passes without work (no
   DSOD, unconditional transfer) until a present node; [None] when the
   chain halts, leaves defined ground or cycles. *)
let chase_to_node t (start : Program.bref) =
  let rec go (bref : Program.bref) fuel =
    if Hashtbl.mem t.nodes bref then Some bref
    else if fuel = 0 then None
    else
      match Program.find_block t.program bref with
      | exception Not_found -> None
      | block -> (
        if lift_dsod block.Block.stmts <> [] then None
        else
          match block.Block.term with
          | Term.Goto l -> go { Program.handler = bref.handler; label = l } (fuel - 1)
          | _ -> None)
  in
  go start 1024

let reduce t =
  let removable =
    Hashtbl.fold
      (fun bref n acc ->
        match (n.kind, n.dsod, n.term) with
        | Block.Normal, [], Term.Goto _ -> bref :: acc
        | _ -> acc)
      t.nodes []
  in
  List.iter (Hashtbl.remove t.nodes) removable;
  (* Drop membership entries sourced at removed nodes so a later add_log
     that recreates one starts from its (empty) lists consistently. *)
  if removable <> [] then begin
    let gone = Hashtbl.create 16 in
    List.iter (fun b -> Hashtbl.replace gone b ()) removable;
    Hashtbl.filter_map_inplace
      (fun edge () ->
        let src =
          match edge with
          | E_succ (src, _) | E_case (src, _, _) | E_itarget (src, _) -> src
        in
        if Hashtbl.mem gone src then None else Some ())
      t.seen;
    (* Rewrite surviving nodes' successor edges through the removed
       blocks: an NBTD edge into a reduced-away block would otherwise
       dangle.  The chase mirrors the walker's pass-through rule. *)
    Hashtbl.iter
      (fun _ n ->
        let rewritten =
          List.filter_map
            (fun s ->
              if Hashtbl.mem t.nodes s then Some s else chase_to_node t s)
            n.succs
        in
        let dedup =
          List.rev
            (List.fold_left
               (fun acc s -> if List.mem s acc then acc else s :: acc)
               [] rewritten)
        in
        List.iter
          (fun s -> Hashtbl.replace t.seen (E_succ (n.bref, s)) ())
          dedup;
        n.succs <- dedup)
      t.nodes
  end;
  (* Count each bref at most once across repeated reductions. *)
  let fresh =
    List.filter (fun b -> not (Hashtbl.mem t.removed b)) removable
  in
  List.iter (fun b -> Hashtbl.replace t.removed b ()) fresh;
  t.reduced <- t.reduced + List.length fresh;
  List.length removable

let validate t =
  Validate.check_graph t.program
    ~nodes:
      (List.map
         (fun n -> (n.bref, n.succs))
         (List.sort
            (fun a b -> Program.bref_compare a.bref b.bref)
            (Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes [])))
    ~pass_through:(fun (b : Block.t) -> lift_dsod b.Block.stmts = [])

let pp_stats ppf t =
  let conds =
    Hashtbl.fold
      (fun _ n acc -> match n.term with Term.Branch _ -> acc + 1 | _ -> acc)
      t.nodes 0
  in
  let one_sided =
    Hashtbl.fold
      (fun _ n acc ->
        match n.term with
        | Term.Branch _ when (n.taken = 0) <> (n.not_taken = 0) -> acc + 1
        | _ -> acc)
      t.nodes 0
  in
  Format.fprintf ppf
    "es-cfg %s: %d nodes (%d reduced away), %d conditionals (%d one-sided), %d commands, %d sync points"
    (Program.name t.program) (node_count t) t.reduced conds one_sided
    (List.length (commands t))
    (List.length (sync_points t))

let import_node t bref ~visits ~taken ~not_taken ~cases ~itargets ~succs =
  let n = get_node t bref in
  n.visits <- visits;
  n.taken <- taken;
  n.not_taken <- not_taken;
  n.cases <- cases;
  n.itargets <- itargets;
  n.succs <- succs;
  (* Seed the membership table so further training on an imported spec
     does not duplicate edges. *)
  List.iter (fun (v, d) -> Hashtbl.replace t.seen (E_case (bref, v, d)) ()) cases;
  List.iter (fun v -> Hashtbl.replace t.seen (E_itarget (bref, v)) ()) itargets;
  List.iter (fun s -> Hashtbl.replace t.seen (E_succ (bref, s)) ()) succs

let reduced_count t = t.reduced

let import_reduced t n =
  if n < 0 then invalid_arg "Es_cfg.import_reduced: negative count";
  t.reduced <- n

let import_access t ~cmd bref =
  match cmd with
  | None -> Hashtbl.replace t.no_cmd bref ()
  | Some key -> Hashtbl.replace (access_set t key) bref ()
