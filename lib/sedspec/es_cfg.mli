(** The Execution Specification CFG (paper §V) and its constructor
    (Algorithm 1).

    Nodes correspond to source basic blocks observed during benign
    training.  Each node carries:

    - {b DSOD} (Device State Operation Data): the lifted source statements
      that compute device state — state writes plus the local/guest-read
      definitions they depend on (the product of data dependency
      recovery);
    - {b NBTD} (Next Block Transition Data): the source terminator
      together with the observed transition behaviour — taken/not-taken
      counts for conditional branches, the observed case set for switches
      and the observed (legitimate) target set for indirect calls.

    The constructor consumes device state change logs: it restores each
    interaction's full block path from the observation-point entries (the
    gaps between observation points are deterministic goto chains), builds
    nodes and transition edges, and maintains the command access table —
    for every decoded command, the set of blocks reachable while that
    command is current.  Command context persists across I/O interactions
    until a command end block, as device commands span many port
    accesses. *)

type node = {
  bref : Devir.Program.bref;
  kind : Devir.Block.kind;
  dsod : Devir.Stmt.t list;
  term : Devir.Term.t;
  sync_locals : string list;
      (** Locals loaded from host-side values in this block: the checker
          cannot compute them and must synchronise from the device run. *)
  mutable visits : int;
  mutable taken : int;
  mutable not_taken : int;
  mutable cases : (int64 * string) list;  (** Observed case value/label. *)
  mutable itargets : int64 list;  (** Legitimate indirect targets. *)
  mutable succs : Devir.Program.bref list;
}

type cmd_key = Devir.Program.bref * int64
(** A command is identified by its decision block and decoded value. *)

(** Where the spec's learned content came from.  [Trained] is the one-shot
    paper pipeline (the default); [Retrained n] a fresh training pass on an
    [n]-case corpus; [Minimized] a {!Minimize} derivation; [Merged] an
    {!Evolve.merge} of a base with a candidate's benign evidence. *)
type provenance = Trained | Retrained of int | Minimized | Merged

type t

val create : program:Devir.Program.t -> selection:Selection.t -> t

val add_log : t -> Ds_log.log -> unit
(** Fold one benign test case into the specification. *)

val add_logs : t -> Ds_log.t -> unit

val program : t -> Devir.Program.t
val selection : t -> Selection.t

val revision : t -> int
(** Monotonically increasing spec revision.  Freshly trained specs (and
    legacy persisted files with no [revision] line) are revision 0; every
    evolution derivation bumps it, so the rollout ladder can order, pin
    and roll back spec generations. *)

val provenance : t -> provenance

val set_version : t -> revision:int -> provenance:provenance -> unit
(** Stamp a derivation.  Raises [Invalid_argument] on a negative
    revision. *)

val provenance_to_string : provenance -> string
(** ["trained"], ["retrained:N"], ["minimized"] or ["merged"] — the tag
    {!Persist} writes. *)

val provenance_of_string : string -> provenance option

val node : t -> Devir.Program.bref -> node option
val nodes : t -> node list
val node_count : t -> int

val entry_of : t -> string -> Devir.Program.bref
(** Entry block of a handler (from the program). *)

val cmd_known : t -> cmd_key -> bool
val cmd_allows : t -> cmd_key -> Devir.Program.bref -> bool
val no_cmd_allows : t -> Devir.Program.bref -> bool

val cmd_key_compare : cmd_key -> cmd_key -> int
(** Total order on commands: (decision bref, value). *)

val commands : t -> cmd_key list
(** All decoded commands, sorted by (decision bref, value) — the order is
    part of the spec's observable surface: it feeds reports, viz and the
    dense command-id assignment both walk engines share. *)

val sync_points : t -> (Devir.Program.bref * string list) list
(** All nodes with host-value locals — where sync instrumentation goes.
    Sorted by bref. *)

val access_entries : t -> (cmd_key option * Devir.Program.bref) list
(** The full command access table as (command, member) rows, [None] being
    the no-command set; deterministically ordered.  Inverse of repeated
    {!import_access} — used to copy access state onto a derived
    (minimized) spec. *)

val reduce : t -> int
(** Control flow reduction: delete nodes with no device-state operations
    and an unconditional transfer (the checker walks through such blocks
    without work).  Surviving nodes' successor edges are rewritten
    through the removed blocks (chasing the walker's pass-through rule),
    so no dangling successors remain.  Returns the number of nodes
    removed by this call; the {!reduced} statistic counts each distinct
    bref once, making repeated reduction idempotent. *)

val reduced_count : t -> int
(** Nodes reduced away so far (distinct brefs). *)

val import_reduced : t -> int -> unit
(** Set the reduced-away counter (spec import / derivation). *)

val validate : t -> Devir.Validate.error list
(** Graph well-formedness over the program: every node has a source
    block and every successor edge lands on a node, possibly through
    pass-through blocks ({!Devir.Validate.check_graph} with the DSOD
    lifting rule).  Empty on healthy, reduced and minimized specs. *)

val lift_dsod : Devir.Stmt.t list -> Devir.Stmt.t list
(** The DSOD lifting rule (exposed for tests): keeps state writes, local
    definitions, guest reads and host-value loads; drops responses, guest
    stores and notes. *)

val pp_stats : Format.formatter -> t -> unit

(** {1 Import (spec persistence)} *)

val import_node :
  t ->
  Devir.Program.bref ->
  visits:int ->
  taken:int ->
  not_taken:int ->
  cases:(int64 * string) list ->
  itargets:int64 list ->
  succs:Devir.Program.bref list ->
  unit
(** Recreate a node from persisted training statistics; DSOD/NBTD come
    from the program source.  Used by {!Persist}. *)

val import_access : t -> cmd:cmd_key option -> Devir.Program.bref -> unit
(** Mark a block accessible under a command ([None] = the no-command
    set). *)
