open Devir
module Json = Sedspec_util.Json
module Table = Sedspec_util.Table

(* Structural diff and conservative merge of two ES-CFGs (ROADMAP item 4).

   The diff is keyed by bref (handler/label strings), so it works across
   device versions and across derived programs (a minimized spec's
   "+min" program keeps every surviving block's bref).  The merge is
   evidence-conservative: it starts from the base spec and only ever
   *adds* — nodes the candidate visited, transition envelope entries the
   candidate observed, access-table rows the candidate's benign traffic
   exercised.  Nothing the base learned is ever removed, so a merged
   spec can only be looser than the base where the candidate's benign
   evidence supports it, and never stricter. *)

type envelope_change = {
  e_bref : Program.bref;
  e_new_taken : bool;  (** Candidate adds taken evidence the base lacks. *)
  e_new_not_taken : bool;
  e_new_cases : (int64 * string) list;
  e_gone_cases : (int64 * string) list;
  e_new_itargets : int64 list;
  e_gone_itargets : int64 list;
  e_new_succs : Program.bref list;
  e_gone_succs : Program.bref list;
}

type diff = {
  base_revision : int;
  base_provenance : Es_cfg.provenance;
  cand_revision : int;
  cand_provenance : Es_cfg.provenance;
  base_nodes : int;
  cand_nodes : int;
  added_nodes : Program.bref list;
  removed_nodes : Program.bref list;
  reenveloped : envelope_change list;
  added_cmds : Es_cfg.cmd_key list;
  removed_cmds : Es_cfg.cmd_key list;
  added_access : (Es_cfg.cmd_key option * Program.bref) list;
  removed_access : (Es_cfg.cmd_key option * Program.bref) list;
  added_syncs : (Program.bref * string list) list;
  removed_syncs : (Program.bref * string list) list;
}

let sort_brefs = List.sort Program.bref_compare

let diff_list ~cmp xs ys =
  (* Elements of [ys] not in [xs], preserving [ys]'s (sorted) order. *)
  List.filter (fun y -> not (List.exists (fun x -> cmp x y = 0) xs)) ys

let envelope_change (b : Es_cfg.node) (c : Es_cfg.node) =
  let case_cmp (va, la) (vb, lb) =
    match Int64.compare va vb with 0 -> String.compare la lb | n -> n
  in
  let ch =
    {
      e_bref = b.Es_cfg.bref;
      e_new_taken = b.Es_cfg.taken = 0 && c.Es_cfg.taken > 0;
      e_new_not_taken = b.Es_cfg.not_taken = 0 && c.Es_cfg.not_taken > 0;
      e_new_cases =
        List.sort case_cmp (diff_list ~cmp:case_cmp b.Es_cfg.cases c.Es_cfg.cases);
      e_gone_cases =
        List.sort case_cmp (diff_list ~cmp:case_cmp c.Es_cfg.cases b.Es_cfg.cases);
      e_new_itargets =
        List.sort Int64.compare
          (diff_list ~cmp:Int64.compare b.Es_cfg.itargets c.Es_cfg.itargets);
      e_gone_itargets =
        List.sort Int64.compare
          (diff_list ~cmp:Int64.compare c.Es_cfg.itargets b.Es_cfg.itargets);
      e_new_succs =
        sort_brefs
          (diff_list ~cmp:Program.bref_compare b.Es_cfg.succs c.Es_cfg.succs);
      e_gone_succs =
        sort_brefs
          (diff_list ~cmp:Program.bref_compare c.Es_cfg.succs b.Es_cfg.succs);
    }
  in
  if
    ch.e_new_taken || ch.e_new_not_taken || ch.e_new_cases <> []
    || ch.e_gone_cases <> [] || ch.e_new_itargets <> []
    || ch.e_gone_itargets <> [] || ch.e_new_succs <> []
    || ch.e_gone_succs <> []
  then Some ch
  else None

let access_cmp (ca, ba) (cb, bb) =
  let c =
    match (ca, cb) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some ka, Some kb -> Es_cfg.cmd_key_compare ka kb
  in
  match c with 0 -> Program.bref_compare ba bb | n -> n

let sync_cmp (ba, _) (bb, _) = Program.bref_compare ba bb

let diff ~base ~cand =
  let base_nodes = Es_cfg.nodes base and cand_nodes = Es_cfg.nodes cand in
  let base_brefs = List.map (fun (n : Es_cfg.node) -> n.Es_cfg.bref) base_nodes in
  let cand_brefs = List.map (fun (n : Es_cfg.node) -> n.Es_cfg.bref) cand_nodes in
  let reenveloped =
    List.filter_map
      (fun (b : Es_cfg.node) ->
        match Es_cfg.node cand b.Es_cfg.bref with
        | Some c -> envelope_change b c
        | None -> None)
      base_nodes
  in
  let sync_delta a b =
    (* A sync point counts as changed when its local set changes, too:
       report it as removed+added. *)
    List.filter
      (fun (bref, locals) ->
        match List.find_opt (fun (b', _) -> Program.bref_equal b' bref) a with
        | Some (_, locals') -> locals <> locals'
        | None -> true)
      b
  in
  let base_sync = Es_cfg.sync_points base and cand_sync = Es_cfg.sync_points cand in
  let base_access = Es_cfg.access_entries base in
  let cand_access = Es_cfg.access_entries cand in
  {
    base_revision = Es_cfg.revision base;
    base_provenance = Es_cfg.provenance base;
    cand_revision = Es_cfg.revision cand;
    cand_provenance = Es_cfg.provenance cand;
    base_nodes = Es_cfg.node_count base;
    cand_nodes = Es_cfg.node_count cand;
    added_nodes =
      sort_brefs (diff_list ~cmp:Program.bref_compare base_brefs cand_brefs);
    removed_nodes =
      sort_brefs (diff_list ~cmp:Program.bref_compare cand_brefs base_brefs);
    reenveloped =
      List.sort
        (fun a b -> Program.bref_compare a.e_bref b.e_bref)
        reenveloped;
    added_cmds =
      List.sort Es_cfg.cmd_key_compare
        (diff_list ~cmp:Es_cfg.cmd_key_compare (Es_cfg.commands base)
           (Es_cfg.commands cand));
    removed_cmds =
      List.sort Es_cfg.cmd_key_compare
        (diff_list ~cmp:Es_cfg.cmd_key_compare (Es_cfg.commands cand)
           (Es_cfg.commands base));
    added_access =
      List.sort access_cmp (diff_list ~cmp:access_cmp base_access cand_access);
    removed_access =
      List.sort access_cmp (diff_list ~cmp:access_cmp cand_access base_access);
    added_syncs = List.sort sync_cmp (sync_delta base_sync cand_sync);
    removed_syncs = List.sort sync_cmp (sync_delta cand_sync base_sync);
  }

let is_empty d =
  d.added_nodes = [] && d.removed_nodes = [] && d.reenveloped = []
  && d.added_cmds = [] && d.removed_cmds = [] && d.added_access = []
  && d.removed_access = [] && d.added_syncs = [] && d.removed_syncs = []

let change_count d =
  List.length d.added_nodes + List.length d.removed_nodes
  + List.length d.reenveloped + List.length d.added_cmds
  + List.length d.removed_cmds + List.length d.added_access
  + List.length d.removed_access + List.length d.added_syncs
  + List.length d.removed_syncs

(* --- Conservative merge ------------------------------------------------- *)

let dedup_append ~cmp xs ys =
  xs @ List.filter (fun y -> not (List.exists (fun x -> cmp x y = 0) xs)) ys

let merge ~base ~cand =
  let program = Es_cfg.program base in
  if Program.name program <> Program.name (Es_cfg.program cand) then
    invalid_arg
      (Printf.sprintf "Evolve.merge: spec programs differ (%s vs %s)"
         (Program.name program)
         (Program.name (Es_cfg.program cand)));
  let merged = Es_cfg.create ~program ~selection:(Es_cfg.selection base) in
  let case_cmp (va, la) (vb, lb) =
    match Int64.compare va vb with 0 -> String.compare la lb | n -> n
  in
  (* Base nodes first, widened by candidate evidence where it exists. *)
  List.iter
    (fun (b : Es_cfg.node) ->
      let visits, taken, not_taken, cases, itargets, succs =
        match Es_cfg.node cand b.Es_cfg.bref with
        | Some c when c.Es_cfg.visits > 0 ->
          ( b.Es_cfg.visits + c.Es_cfg.visits,
            b.Es_cfg.taken + c.Es_cfg.taken,
            b.Es_cfg.not_taken + c.Es_cfg.not_taken,
            dedup_append ~cmp:case_cmp b.Es_cfg.cases c.Es_cfg.cases,
            dedup_append ~cmp:Int64.compare b.Es_cfg.itargets c.Es_cfg.itargets,
            dedup_append ~cmp:Program.bref_compare b.Es_cfg.succs c.Es_cfg.succs
          )
        | _ ->
          ( b.Es_cfg.visits,
            b.Es_cfg.taken,
            b.Es_cfg.not_taken,
            b.Es_cfg.cases,
            b.Es_cfg.itargets,
            b.Es_cfg.succs )
      in
      Es_cfg.import_node merged b.Es_cfg.bref ~visits ~taken ~not_taken ~cases
        ~itargets ~succs)
    (Es_cfg.nodes base);
  (* Candidate-only nodes: admitted when the candidate actually visited
     them during benign (re)training — unvisited imports carry no
     evidence and stay out. *)
  List.iter
    (fun (c : Es_cfg.node) ->
      if c.Es_cfg.visits > 0 && Es_cfg.node base c.Es_cfg.bref = None then
        Es_cfg.import_node merged c.Es_cfg.bref ~visits:c.Es_cfg.visits
          ~taken:c.Es_cfg.taken ~not_taken:c.Es_cfg.not_taken
          ~cases:c.Es_cfg.cases ~itargets:c.Es_cfg.itargets
          ~succs:c.Es_cfg.succs)
    (Es_cfg.nodes cand);
  (* Access-table union (import_access is idempotent). *)
  List.iter
    (fun (cmd, bref) -> Es_cfg.import_access merged ~cmd bref)
    (Es_cfg.access_entries base);
  List.iter
    (fun (cmd, bref) -> Es_cfg.import_access merged ~cmd bref)
    (Es_cfg.access_entries cand);
  Es_cfg.import_reduced merged (Es_cfg.reduced_count base);
  Es_cfg.set_version merged
    ~revision:(max (Es_cfg.revision base) (Es_cfg.revision cand) + 1)
    ~provenance:Es_cfg.Merged;
  (match Es_cfg.validate merged with
  | [] -> ()
  | errors ->
    failwith
      (Format.asprintf "Evolve.merge: merged spec is ill-formed:@ %a"
         (Format.pp_print_list Devir.Validate.pp_error)
         errors));
  merged

(* --- Rendering ----------------------------------------------------------- *)

let bref_str (b : Program.bref) = b.handler ^ "/" ^ b.label
let cmd_str ((d, v) : Es_cfg.cmd_key) = Printf.sprintf "%s=0x%Lx" (bref_str d) v

let access_str (cmd, bref) =
  match cmd with
  | None -> Printf.sprintf "nocmd:%s" (bref_str bref)
  | Some key -> Printf.sprintf "%s:%s" (cmd_str key) (bref_str bref)

let sync_str (bref, locals) =
  Printf.sprintf "%s[%s]" (bref_str bref) (String.concat "," locals)

let envelope_str ch =
  let parts =
    (if ch.e_new_taken then [ "+taken" ] else [])
    @ (if ch.e_new_not_taken then [ "+not-taken" ] else [])
    @ List.map (fun (v, l) -> Printf.sprintf "+case 0x%Lx->%s" v l) ch.e_new_cases
    @ List.map (fun (v, l) -> Printf.sprintf "-case 0x%Lx->%s" v l) ch.e_gone_cases
    @ List.map (fun v -> Printf.sprintf "+itarget 0x%Lx" v) ch.e_new_itargets
    @ List.map (fun v -> Printf.sprintf "-itarget 0x%Lx" v) ch.e_gone_itargets
    @ List.map (fun s -> "+succ " ^ bref_str s) ch.e_new_succs
    @ List.map (fun s -> "-succ " ^ bref_str s) ch.e_gone_succs
  in
  String.concat " " parts

let diff_to_json d =
  let strs f l = Json.List (List.map (fun x -> Json.Str (f x)) l) in
  Json.Obj
    [
      ( "base",
        Json.Obj
          [
            ("revision", Json.Int d.base_revision);
            ( "provenance",
              Json.Str (Es_cfg.provenance_to_string d.base_provenance) );
            ("nodes", Json.Int d.base_nodes);
          ] );
      ( "candidate",
        Json.Obj
          [
            ("revision", Json.Int d.cand_revision);
            ( "provenance",
              Json.Str (Es_cfg.provenance_to_string d.cand_provenance) );
            ("nodes", Json.Int d.cand_nodes);
          ] );
      ("empty", Json.Bool (is_empty d));
      ("changes", Json.Int (change_count d));
      ("added_nodes", strs bref_str d.added_nodes);
      ("removed_nodes", strs bref_str d.removed_nodes);
      ( "reenveloped",
        Json.List
          (List.map
             (fun ch ->
               Json.Obj
                 [
                   ("node", Json.Str (bref_str ch.e_bref));
                   ("change", Json.Str (envelope_str ch));
                 ])
             d.reenveloped) );
      ("added_commands", strs cmd_str d.added_cmds);
      ("removed_commands", strs cmd_str d.removed_cmds);
      ("added_access", strs access_str d.added_access);
      ("removed_access", strs access_str d.removed_access);
      ("added_sync_points", strs sync_str d.added_syncs);
      ("removed_sync_points", strs sync_str d.removed_syncs);
    ]

let diff_rows d =
  let row kind what = [ kind; what ] in
  List.map (fun b -> row "+node" (bref_str b)) d.added_nodes
  @ List.map (fun b -> row "-node" (bref_str b)) d.removed_nodes
  @ List.map
      (fun ch -> row "~envelope" (bref_str ch.e_bref ^ ": " ^ envelope_str ch))
      d.reenveloped
  @ List.map (fun c -> row "+cmd" (cmd_str c)) d.added_cmds
  @ List.map (fun c -> row "-cmd" (cmd_str c)) d.removed_cmds
  @ List.map (fun a -> row "+access" (access_str a)) d.added_access
  @ List.map (fun a -> row "-access" (access_str a)) d.removed_access
  @ List.map (fun s -> row "+sync" (sync_str s)) d.added_syncs
  @ List.map (fun s -> row "-sync" (sync_str s)) d.removed_syncs

let pp_diff ppf d =
  Format.fprintf ppf
    "spec diff: base rev %d (%s, %d nodes) -> candidate rev %d (%s, %d \
     nodes): %d changes@."
    d.base_revision
    (Es_cfg.provenance_to_string d.base_provenance)
    d.base_nodes d.cand_revision
    (Es_cfg.provenance_to_string d.cand_provenance)
    d.cand_nodes (change_count d);
  if not (is_empty d) then
    Format.fprintf ppf "%s"
      (Table.render ~header:[ "delta"; "site" ] (diff_rows d))
