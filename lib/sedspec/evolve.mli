(** Spec evolution: structural diff and conservative merge of ES-CFGs
    (ROADMAP item 4).

    Production traffic contains benign behaviour the trainer never saw,
    so the specification is a living artifact: candidates are retrained
    (or minimized), compared against the enforced base, shadow-scored by
    the fleet and canaried before promotion.  This module supplies the
    comparison layer:

    - {!diff}: a structural delta of two ES-CFGs keyed by bref, so it
      works across device versions and derived ("+min") programs —
      added/removed nodes, re-enveloped transition data (new branch
      directions, switch cases, indirect targets, successor edges),
      command-set, access-table and sync-point deltas, rendered as
      deterministic JSON ({!diff_to_json}) and a table ({!pp_diff});
    - {!merge}: an evidence-conservative widening — base plus exactly
      the nodes/envelopes/access rows the candidate's benign training
      visited.  Nothing the base learned is removed, so the merged spec
      is never stricter than the base and only looser where candidate
      evidence supports it. *)

type envelope_change = {
  e_bref : Devir.Program.bref;
  e_new_taken : bool;  (** Candidate adds taken evidence the base lacks. *)
  e_new_not_taken : bool;
  e_new_cases : (int64 * string) list;
  e_gone_cases : (int64 * string) list;
  e_new_itargets : int64 list;
  e_gone_itargets : int64 list;
  e_new_succs : Devir.Program.bref list;
  e_gone_succs : Devir.Program.bref list;
}

type diff = {
  base_revision : int;
  base_provenance : Es_cfg.provenance;
  cand_revision : int;
  cand_provenance : Es_cfg.provenance;
  base_nodes : int;
  cand_nodes : int;
  added_nodes : Devir.Program.bref list;  (** In candidate, not base. *)
  removed_nodes : Devir.Program.bref list;  (** In base, not candidate. *)
  reenveloped : envelope_change list;
      (** Nodes in both whose transition envelope differs. *)
  added_cmds : Es_cfg.cmd_key list;
  removed_cmds : Es_cfg.cmd_key list;
  added_access : (Es_cfg.cmd_key option * Devir.Program.bref) list;
  removed_access : (Es_cfg.cmd_key option * Devir.Program.bref) list;
  added_syncs : (Devir.Program.bref * string list) list;
  removed_syncs : (Devir.Program.bref * string list) list;
}

val diff : base:Es_cfg.t -> cand:Es_cfg.t -> diff
(** Every list is deterministically sorted; a sync point whose local set
    changed appears as removed+added. *)

val is_empty : diff -> bool
(** No delta in any category — [diff ~base:s ~cand:s] is always empty. *)

val change_count : diff -> int

val merge : base:Es_cfg.t -> cand:Es_cfg.t -> Es_cfg.t
(** Conservative widening of [base] by [cand]'s benign evidence (same
    program required — raises [Invalid_argument] otherwise).  Candidate
    nodes are admitted only when visited during training; envelopes
    accumulate (counts add, case/target/successor sets union); access
    rows union; nothing is removed.  The result is stamped revision
    [max(base, cand) + 1] with [Merged] provenance and validated
    ([Failure] on an ill-formed result — cannot happen for two
    well-formed specs over one program). *)

val diff_to_json : diff -> Sedspec_util.Json.t
(** Deterministic (sorted, jobs-independent) JSON rendering. *)

val pp_diff : Format.formatter -> diff -> unit
(** Summary line plus a delta/site table (like the locator's
    behaviour-delta reports). *)
