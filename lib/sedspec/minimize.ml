open Devir

(* Dependence-driven spec-to-spec minimization (ROADMAP item 2).

   Three rewrites over a trained ES-CFG, each proven bit-equivalent in
   verdicts by construction and re-proven by the differential fuzzer
   (minimized-vs-trained profiles):

   (a) {b branch folding / dominated-check pruning}.  A conditional whose
       expression is constant and whose observed direction matches the
       constant is rewritten to the unconditional transfer.  A
       conditional B whose expression equals that of a strictly
       dominating conditional A, where both were one-sided the same way
       in training and nothing on any A→B path can change the
       expression's value, is likewise rewritten: any walk that reaches B
       already passed A's identical check, so B's own check can never be
       the first to fire.

   (b) {b sync-point reclassification}.  The DDG-backed
       [Datadep.classify_site] replaces the flow-insensitive chase; the
       report records how many decision sites stop being sync points.
       The [Host_value] statements themselves are kept: dropping one
       would change {e when} an interaction defers (pre- vs
       post-execution checking), which is observable in anomaly
       timing — the reclassification sharpens reports, not walks.

   (c) {b chain merging + pruning}.  A node whose lifted statements are
       all walk-local (local/guest-read definitions, which can never
       raise a positioned anomaly) and whose unique successor can only be
       entered through it forwards those statements into the successor.
       Then every node left with no device-state operations, an
       unconditional transfer and unconditional access (member of the
       no-command set, so the access check passes under every command
       context) is pruned: the walker crosses it as a pass-through chain
       block, still charging a walk step, so walk-limit and deadline
       anomaly sites are preserved.

   Soundness notes baked into the guards below:
   - pruned nodes must be in the no-command access set — otherwise the
     trained walk could raise "block not accessible" where the minimized
     walk passes through silently;
   - [Cmd_decision]/[Cmd_end] nodes are never pruned — pass-through
     chasing is kind-blind and would lose command-context transitions;
   - only [Set_local]/[Read_guest] statements are forwarded by merging —
     [Set_field]/buffer writes can raise anomalies positioned at their
     node, and [Host_value] keys its sync queue by bref;
   - dominated-branch certification requires no local/field writes (and
     no indirect calls, whose callees share the walk's local table)
     between the two checks;
   - with the conditional-jump check disabled the dominated-branch
     argument weakens: the trained walk may survive A with the shared
     condition false and then branch differently at B than the rewritten
     [Goto].  The differential contract therefore holds for
     configurations with [Conditional_jump_check] enabled (the default
     and every shipped profile); constant folds and pure prunes hold
     under every configuration. *)

type report = {
  nodes_before : int;
  nodes_after : int;
  pruned : int;
  branches_folded : int;
  branches_dominated : int;
  chains_merged : int;
  sync_sites_flow_insensitive : int;
  sync_sites_ddg : int;
}

let lifts stmt = Es_cfg.lift_dsod [ stmt ] <> []

let const_value layout e =
  if not (Expr.is_constant e) then None
  else
    let ctx =
      {
        Interp.Eval.get_field = (fun _ -> raise Exit);
        get_buf_byte = (fun _ _ -> raise Exit);
        buf_len = Layout.buf_size layout;
        get_param = (fun _ -> raise Exit);
        get_local = (fun _ -> raise Exit);
        record_overflow = (fun _ -> ());
      }
    in
    match Interp.Eval.eval ctx e with
    | v -> Some v
    | exception Interp.Eval.Div_by_zero -> None
    | exception Exit -> None

(* Training saw exactly one direction of this branch? *)
let one_sided (n : Es_cfg.node) =
  if n.taken > 0 && n.not_taken = 0 then Some true
  else if n.not_taken > 0 && n.taken = 0 then Some false
  else None

let run spec =
  let program = Es_cfg.program spec in
  let layout = Program.layout program in
  let graph = Depgraph.build program in
  let nodes = Es_cfg.nodes spec in
  let nodes_before = List.length nodes in
  let node_tbl : (Program.bref, Es_cfg.node) Hashtbl.t =
    Hashtbl.create (2 * nodes_before + 1)
  in
  List.iter (fun (n : Es_cfg.node) -> Hashtbl.replace node_tbl n.bref n) nodes;
  let term_rewrites : (Program.bref, Term.t) Hashtbl.t = Hashtbl.create 16 in
  let stmt_rewrites : (Program.bref, Stmt.t list) Hashtbl.t =
    Hashtbl.create 16
  in
  (* --- (a-i) constant-decided branches --------------------------------- *)
  let branches_folded = ref 0 in
  List.iter
    (fun (n : Es_cfg.node) ->
      match n.term with
      | Term.Branch (cond, if_taken, if_not) -> (
        match const_value layout cond with
        | Some v ->
          let taken = Interp.Eval.truthy v in
          let trained = if taken then n.taken > 0 else n.not_taken > 0 in
          if trained then begin
            Hashtbl.replace term_rewrites n.bref
              (Term.Goto (if taken then if_taken else if_not));
            incr branches_folded
          end
        | None -> ())
      | _ -> ())
    nodes;
  (* --- (a-ii) dominated equivalent branches ---------------------------- *)
  let branches_dominated = ref 0 in
  let stmts_of (bref : Program.bref) =
    (Program.find_block program bref).Block.stmts
  in
  let writes_dep ~dep_locals ~dep_fields stmt =
    List.exists (fun l -> List.mem l dep_locals) (Stmt.locals_written stmt)
    || (dep_fields <> [] && Stmt.fields_written stmt <> [])
  in
  let branch_nodes =
    List.filter
      (fun (n : Es_cfg.node) ->
        match n.term with Term.Branch _ -> true | _ -> false)
      nodes
  in
  List.iter
    (fun (b : Es_cfg.node) ->
      if not (Hashtbl.mem term_rewrites b.bref) then
        match (b.term, one_sided b) with
        | Term.Branch (cond, if_taken, if_not), Some dir ->
          let handler = b.bref.Program.handler in
          let dep_locals = Expr.locals cond in
          let dep_fields = Expr.fields cond in
          let certifies (a : Es_cfg.node) =
            a.bref.Program.handler = handler
            && a.bref.Program.label <> b.bref.Program.label
            && (not (Hashtbl.mem term_rewrites a.bref))
            && (match a.term with
               | Term.Branch (acond, _, _) -> Expr.equal acond cond
               | _ -> false)
            && one_sided a = Some dir
            && Depgraph.dominates graph ~handler a.bref.Program.label
                 b.bref.Program.label
            &&
            (* Nothing between the two evaluations may redefine the
               condition's inputs.  [between] over-approximates the
               executable paths; any field write is treated as aliasing
               any field read (buffer overruns spill into neighbours). *)
            let mid =
              Depgraph.between graph ~handler a.bref.Program.label
                b.bref.Program.label
            in
            List.for_all
              (fun label ->
                let blk =
                  Program.find_block program { Program.handler; label }
                in
                (match blk.Block.term with Term.Icall _ -> false | _ -> true)
                && not
                     (List.exists (writes_dep ~dep_locals ~dep_fields)
                        blk.Block.stmts))
              mid
            && not (List.exists (writes_dep ~dep_locals ~dep_fields) (stmts_of b.bref))
          in
          if List.exists certifies branch_nodes then begin
            Hashtbl.replace term_rewrites b.bref
              (Term.Goto (if dir then if_taken else if_not));
            incr branches_dominated
          end
        | _ -> ())
    branch_nodes;
  let eff_term (n : Es_cfg.node) =
    match Hashtbl.find_opt term_rewrites n.bref with
    | Some t -> t
    | None -> n.term
  in
  (* --- (c) chain merging ----------------------------------------------- *)
  (* Predecessor map per handler over effective terms (folded branches
     lose their dead edge, enabling more merges). *)
  let eff_block_term (bref : Program.bref) =
    match Hashtbl.find_opt term_rewrites bref with
    | Some t -> t
    | None -> (Program.find_block program bref).Block.term
  in
  let preds : (Program.bref, Program.bref list) Hashtbl.t =
    Hashtbl.create 128
  in
  Program.iter_blocks program (fun bref _ ->
      List.iter
        (fun l ->
          let s : Program.bref = { handler = bref.handler; label = l } in
          let cur =
            match Hashtbl.find_opt preds s with Some ps -> ps | None -> []
          in
          if not (List.exists (Program.bref_equal bref) cur) then
            Hashtbl.replace preds s (bref :: cur))
        (Term.successors (eff_block_term bref)));
  let chains_merged = ref 0 in
  let involved : (Program.bref, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (x : Es_cfg.node) ->
      match eff_term x with
      | Term.Goto l
        when (x.kind = Block.Normal || x.kind = Block.Entry)
             && x.dsod <> []
             && List.for_all
                  (fun (s : Stmt.t) ->
                    match s with
                    | Stmt.Set_local _ | Stmt.Read_guest _ -> true
                    | _ -> false)
                  x.dsod
             && Es_cfg.no_cmd_allows spec x.bref
             && not (Hashtbl.mem involved x.bref) -> (
        let y_bref : Program.bref = { handler = x.bref.handler; label = l } in
        match Hashtbl.find_opt node_tbl y_bref with
        | Some y
          when y.kind <> Block.Entry
               && (not (Program.bref_equal x.bref y_bref))
               && (not (Hashtbl.mem involved y_bref))
               && (match Hashtbl.find_opt preds y_bref with
                  | Some [ p ] -> Program.bref_equal p x.bref
                  | _ -> false) ->
          (* Forward x's walk-local definitions into y; x's block keeps
             only statements the walker never executes, so the prune
             pass below removes it as a pass-through. *)
          let x_stmts = stmts_of x.bref in
          Hashtbl.replace stmt_rewrites x.bref
            (List.filter (fun s -> not (lifts s)) x_stmts);
          Hashtbl.replace stmt_rewrites y_bref
            (List.filter lifts x_stmts @ stmts_of y_bref);
          Hashtbl.replace involved x.bref ();
          Hashtbl.replace involved y_bref ();
          incr chains_merged
        | _ -> ())
      | _ -> ())
    nodes;
  (* --- (c) pruning ------------------------------------------------------ *)
  let eff_stmts (bref : Program.bref) =
    match Hashtbl.find_opt stmt_rewrites bref with
    | Some s -> s
    | None -> stmts_of bref
  in
  let prunable (n : Es_cfg.node) =
    (match n.kind with
    | Block.Normal | Block.Entry | Block.Exit -> true
    | Block.Cmd_decision | Block.Cmd_end -> false)
    && (match eff_term n with Term.Goto _ | Term.Halt -> true | _ -> false)
    && Es_cfg.lift_dsod (eff_stmts n.bref) = []
    && Es_cfg.no_cmd_allows spec n.bref
  in
  let pruned_set : (Program.bref, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (n : Es_cfg.node) ->
      if prunable n then Hashtbl.replace pruned_set n.bref ())
    nodes;
  let pruned = Hashtbl.length pruned_set in
  (* --- materialize ------------------------------------------------------ *)
  let min_program =
    Program.map_blocks ~name:(Program.name program ^ "+min") program
      (fun bref (b : Block.t) ->
        let term =
          match Hashtbl.find_opt term_rewrites bref with
          | Some t -> t
          | None -> b.Block.term
        in
        let stmts =
          match Hashtbl.find_opt stmt_rewrites bref with
          | Some s -> s
          | None -> b.Block.stmts
        in
        { b with Block.term; stmts })
  in
  Validate.check_exn min_program;
  let min_spec =
    Es_cfg.create ~program:min_program ~selection:(Es_cfg.selection spec)
  in
  let kept : (Program.bref, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (n : Es_cfg.node) ->
      if not (Hashtbl.mem pruned_set n.bref) then Hashtbl.replace kept n.bref ())
    nodes;
  (* Successor edges chase through the pruned blocks exactly as the
     walker will: rewritten-program gotos down to the next kept node (or
     nothing, when the chain halts). *)
  let rec chase (bref : Program.bref) fuel =
    if Hashtbl.mem kept bref then Some bref
    else if fuel = 0 then None
    else
      match Program.find_block min_program bref with
      | exception Not_found -> None
      | blk -> (
        if Es_cfg.lift_dsod blk.Block.stmts <> [] then None
        else
          match blk.Block.term with
          | Term.Goto l ->
            chase { Program.handler = bref.handler; label = l } (fuel - 1)
          | _ -> None)
  in
  List.iter
    (fun (n : Es_cfg.node) ->
      if Hashtbl.mem kept n.bref then begin
        let succs =
          List.rev
            (List.fold_left
               (fun acc s ->
                 match chase s 1024 with
                 | Some s' when not (List.exists (Program.bref_equal s') acc) ->
                   s' :: acc
                 | _ -> acc)
               [] n.succs)
        in
        Es_cfg.import_node min_spec n.bref ~visits:n.visits ~taken:n.taken
          ~not_taken:n.not_taken ~cases:n.cases ~itargets:n.itargets ~succs
      end)
    nodes;
  List.iter
    (fun (cmd, bref) -> Es_cfg.import_access min_spec ~cmd bref)
    (Es_cfg.access_entries spec);
  Es_cfg.import_reduced min_spec (Es_cfg.reduced_count spec + pruned);
  Es_cfg.set_version min_spec
    ~revision:(Es_cfg.revision spec + 1)
    ~provenance:Es_cfg.Minimized;
  (match Es_cfg.validate min_spec with
  | [] -> ()
  | errors ->
    failwith
      (Format.asprintf "Minimize.run: minimized spec is ill-formed:@ %a"
         (Format.pp_print_list Validate.pp_error)
         errors));
  (* --- (b) sync-site reclassification (report-level) -------------------- *)
  let sync_count classify =
    List.length
      (List.filter
         (fun (n : Es_cfg.node) ->
           match Term.exprs n.term with
           | [] -> false
           | es ->
             List.exists (fun e -> classify n.bref e = Datadep.Sync_point) es)
         nodes)
  in
  let sync_fi =
    sync_count (fun bref e ->
        Datadep.classify_site_flow_insensitive program bref e)
  in
  let sync_fs =
    sync_count (fun bref e -> Datadep.classify_site ~graph program bref e)
  in
  ( min_spec,
    {
      nodes_before;
      nodes_after = Es_cfg.node_count min_spec;
      pruned;
      branches_folded = !branches_folded;
      branches_dominated = !branches_dominated;
      chains_merged = !chains_merged;
      sync_sites_flow_insensitive = sync_fi;
      sync_sites_ddg = sync_fs;
    } )

let pp_report ppf r =
  Format.fprintf ppf
    "minimized %d -> %d nodes (%d pruned, %d folded, %d dominated, %d merged); sync sites %d -> %d (ddg)"
    r.nodes_before r.nodes_after r.pruned r.branches_folded
    r.branches_dominated r.chains_merged r.sync_sites_flow_insensitive
    r.sync_sites_ddg
