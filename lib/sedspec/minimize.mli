(** Dependence-driven specification minimization (ROADMAP item 2).

    A spec-to-spec transform over a trained {!Es_cfg.t} that deletes
    checks provably subsumed by earlier checks and merges straight-line
    chains {!Es_cfg.reduce} cannot touch.  Passes:

    + {b constant branch folding} — conditionals whose expression is
      constant ({!Devir.Expr.is_constant}) and whose trained direction
      agrees become unconditional transfers;
    + {b dominated-check pruning} — a one-sided conditional strictly
      dominated by an equal one-sided conditional, with no writes to the
      condition's inputs (and no indirect calls) possible in between,
      is rewritten to its trained direction: its check can never be the
      first to fire;
    + {b chain merging} — a node whose lifted statements are all
      walk-local definitions and whose unique successor is only
      reachable through it forwards those statements into the successor;
    + {b pruning} — nodes left with no device-state operations, an
      unconditional terminator and unconditional access (no-command set
      membership) are removed; the walker crosses them as pass-through
      blocks, so step counting and anomaly sites are unchanged.

    The result is a new spec over a cloned program (same labels and
    addresses, name suffixed ["+min"]) that walks the {e original}
    device's events and must produce bit-identical verdicts — enforced
    structurally by {!Es_cfg.validate} at build time and behaviourally by
    the differential fuzzer's minimized-vs-trained profiles.  The
    dominated-branch pass assumes the conditional jump check is enabled
    (every shipped configuration); all other passes are sound under any
    configuration. *)

type report = {
  nodes_before : int;
  nodes_after : int;
  pruned : int;  (** Nodes removed (includes merged-away sources). *)
  branches_folded : int;  (** Constant-decided conditionals rewritten. *)
  branches_dominated : int;  (** Dominated equal conditionals rewritten. *)
  chains_merged : int;  (** Chain pairs whose definitions were forwarded. *)
  sync_sites_flow_insensitive : int;
      (** Decision sites the pre-DDG classifier calls sync points. *)
  sync_sites_ddg : int;
      (** Sync points under the flow-sensitive DDG classifier — the
          sites whose host dependence actually reaches the decision. *)
}

val run : Es_cfg.t -> Es_cfg.t * report
(** Minimize a trained spec.  The input is not modified.  Raises
    [Failure] if the minimized spec fails {!Es_cfg.validate} — a bug
    guard, not an expected outcome. *)

val pp_report : Format.formatter -> report -> unit
