open Devir

let magic = "sedspec-spec v1"

let rule_to_tag = function
  | Selection.Rule1_hw_register -> "rule1"
  | Selection.Rule2_buffer -> "rule2buf"
  | Selection.Rule2_index -> "rule2idx"
  | Selection.Rule2_fn_ptr -> "rule2fn"
  | Selection.Branch_influencer -> "branch"
  | Selection.Dependency -> "dep"

let rule_of_tag = function
  | "rule1" -> Some Selection.Rule1_hw_register
  | "rule2buf" -> Some Selection.Rule2_buffer
  | "rule2idx" -> Some Selection.Rule2_index
  | "rule2fn" -> Some Selection.Rule2_fn_ptr
  | "branch" -> Some Selection.Branch_influencer
  | "dep" -> Some Selection.Dependency
  | _ -> None

(* The format is line- and word-oriented: names are separated by spaces,
   list entries by commas, buffer entries use ':' for the size.  A name
   containing any of those separators (or a newline) would round-trip
   into a different spec — or a parse error — with no warning, so saving
   validates every name first. *)

let name_ok ?(extra = []) s =
  s <> ""
  && String.for_all
       (fun c ->
         not (List.mem c ([ ' '; ','; '\n'; '\r'; '\t' ] @ extra)))
       s

let validate_names spec =
  let bad = ref [] in
  let check what ?extra s = if not (name_ok ?extra s) then bad := (what, s) :: !bad in
  let check_bref what (b : Program.bref) =
    check (what ^ " handler") b.handler;
    check (what ^ " label") b.label
  in
  let program = Es_cfg.program spec in
  let sel = Es_cfg.selection spec in
  check "program name" (Program.name program);
  List.iter (check "scalar") sel.Selection.scalars;
  List.iter (fun (b, _) -> check "buffer" ~extra:[ ':' ] b) sel.Selection.buffers;
  List.iter (check "fn-ptr") sel.Selection.fn_ptrs;
  List.iter (check "index param") sel.Selection.index_params;
  List.iter (check "tracked buffer") sel.Selection.tracked_buffers;
  List.iter (fun (n, _) -> check "rationale name" n) sel.Selection.rationale;
  List.iter
    (fun (n : Es_cfg.node) ->
      check_bref "node" n.bref;
      List.iter (fun (_, l) -> check "case label" l) n.cases;
      List.iter (check_bref "successor") n.succs)
    (Es_cfg.nodes spec);
  List.iter (fun (d, _) -> check_bref "command" d) (Es_cfg.commands spec);
  match !bad with
  | [] -> Ok ()
  | (what, s) :: _ ->
    Error
      (Printf.sprintf
         "unpersistable %s %S: names must be non-empty and free of \
          spaces, commas and newlines"
         what s)

let to_string spec =
  (match validate_names spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Persist.to_string: " ^ msg));
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let program = Es_cfg.program spec in
  let sel = Es_cfg.selection spec in
  pf "%s\n" magic;
  pf "program %s\n" (Program.name program);
  (* The version line is omitted for a pristine trained revision 0, so a
     spec that never evolved serialises byte-identically to files written
     before versioning existed — and legacy files parse as exactly that
     state. *)
  (match (Es_cfg.revision spec, Es_cfg.provenance spec) with
  | 0, Es_cfg.Trained -> ()
  | rev, prov ->
    pf "revision %d %s\n" rev (Es_cfg.provenance_to_string prov));
  pf "selection scalars %s\n" (String.concat "," sel.Selection.scalars);
  pf "selection buffers %s\n"
    (String.concat ","
       (List.map (fun (b, n) -> Printf.sprintf "%s:%d" b n) sel.Selection.buffers));
  pf "selection fnptrs %s\n" (String.concat "," sel.Selection.fn_ptrs);
  pf "selection index %s\n" (String.concat "," sel.Selection.index_params);
  pf "selection tracked %s\n" (String.concat "," sel.Selection.tracked_buffers);
  List.iter
    (fun (name, rules) ->
      pf "rationale %s %s\n" name
        (String.concat "," (List.map rule_to_tag rules)))
    sel.Selection.rationale;
  List.iter
    (fun (n : Es_cfg.node) ->
      pf "node %s %s %d %d %d\n" n.bref.handler n.bref.label n.visits n.taken
        n.not_taken;
      List.iter (fun (v, l) -> pf "  case %Ld %s\n" v l) n.cases;
      List.iter (fun v -> pf "  itarget %Ld\n" v) n.itargets;
      List.iter
        (fun (s : Program.bref) -> pf "  succ %s %s\n" s.handler s.label)
        n.succs)
    (Es_cfg.nodes spec);
  List.iter
    (fun (((d : Program.bref), v) as key) ->
      pf "cmd %s %s %Ld\n" d.handler d.label v;
      Program.iter_blocks program (fun bref _ ->
          if Es_cfg.cmd_allows spec key bref then
            pf "  allow %s %s\n" bref.handler bref.label))
    (List.sort compare (Es_cfg.commands spec));
  Program.iter_blocks program (fun bref _ ->
      if Es_cfg.no_cmd_allows spec bref then
        pf "nocmd %s %s\n" bref.handler bref.label);
  pf "end\n";
  (* Integrity trailer over the canonical body (everything up to and
     including the [end] line).  A bit flip or truncation anywhere in the
     body fails the digest on load instead of round-tripping into a
     semantically different spec. *)
  let body = Buffer.contents buf in
  body ^ Printf.sprintf "crc %s\n" Sedspec_util.Crc.(to_hex (crc32 body))

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let split_commas s =
  if String.trim s = "" then [] else String.split_on_char ',' (String.trim s)

(* Split a possible [crc] trailer off the raw text.  The trailer is the
   last non-empty physical line when it starts with the word [crc]; the
   digest covers every byte before that line.  Files from before the
   trailer existed simply do not have one and skip verification.  (No
   body line can be mistaken for the trailer: top-level lines start with
   a fixed keyword set and continuation lines are indented.) *)
let split_trailer text =
  let rec last_line pos acc =
    (* (start offset, contents) of the last non-empty line. *)
    match String.index_from_opt text pos '\n' with
    | Some nl ->
      let seg = String.sub text pos (nl - pos) in
      last_line (nl + 1) (if String.trim seg = "" then acc else Some (pos, seg))
    | None ->
      let seg = String.sub text pos (String.length text - pos) in
      if String.trim seg = "" then acc else Some (pos, seg)
  in
  let words seg =
    String.split_on_char ' ' (String.trim seg) |> List.filter (fun w -> w <> "")
  in
  match last_line 0 None with
  | Some (pos, seg) when (match words seg with "crc" :: _ -> true | _ -> false) ->
    let body = String.sub text 0 pos in
    (match words seg with
    | [ "crc"; v ] -> (
      match Sedspec_util.Crc.of_hex v with
      | Some stored when stored = Sedspec_util.Crc.crc32 body -> body
      | Some _ -> fail "crc mismatch: spec file is corrupt or truncated"
      | None -> fail "malformed crc trailer %S" (String.trim seg))
    | _ -> fail "malformed crc trailer %S" (String.trim seg))
  | _ -> text

let of_string ~program text =
  try
    let text = split_trailer text in
    let lines =
      text |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> "")
    in
    let lines =
      match lines with
      | l :: rest when String.trim l = magic -> rest
      | _ -> fail "missing magic header %S" magic
    in
    let sel =
      ref
        {
          Selection.scalars = [];
          buffers = [];
          fn_ptrs = [];
          index_params = [];
          tracked_buffers = [];
          rationale = [];
        }
    in
    let spec = ref None in
    let get_spec () =
      match !spec with
      | Some s -> s
      | None ->
        (* Rationale lines were accumulated in reverse (consing is linear
           where append-per-line is quadratic); restore file order when
           the selection is frozen into the spec. *)
        let s =
          Es_cfg.create ~program
            ~selection:
              { !sel with Selection.rationale = List.rev !sel.Selection.rationale }
        in
        spec := Some s;
        s
    in
    let version : (int * Es_cfg.provenance) option ref = ref None in
    let current_node : Program.bref option ref = ref None in
    let node_acc = Hashtbl.create 64 in
    let current_cmd : Es_cfg.cmd_key option option ref = ref None in
    let bref h l : Program.bref = { handler = h; label = l } in
    let check_block b =
      try ignore (Program.find_block program b)
      with Not_found -> fail "unknown block %s/%s" b.Program.handler b.Program.label
    in
    let flush_node () =
      match !current_node with
      | None -> ()
      | Some b ->
        let visits, taken, not_taken, cases, itargets, succs =
          Hashtbl.find node_acc b
        in
        Es_cfg.import_node (get_spec ()) b ~visits ~taken ~not_taken
          ~cases:(List.rev cases) ~itargets:(List.rev itargets)
          ~succs:(List.rev succs);
        current_node := None
    in
    let saw_end = ref false in
    List.iter
      (fun line ->
        (* [end] is a terminator, not a separator: trailing content would
           mean the file was spliced or corrupted, and accepting it is
           how a truncated-then-concatenated spec goes undetected. *)
        if !saw_end then fail "content after end line: %S" line;
        let indented = String.length line > 0 && line.[0] = ' ' in
        let words =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun w -> w <> "")
        in
        match (indented, words) with
        | false, [ "program"; name ] ->
          if name <> Program.name program then
            fail "spec is for program %s, not %s" name (Program.name program)
        | false, [ "revision"; rev; prov ] -> (
          (* Stashed, not applied: [get_spec] freezes the selection, and
             the revision line precedes the selection lines. *)
          let rev =
            match int_of_string_opt rev with
            | Some r when r >= 0 -> r
            | _ -> fail "bad revision number %S" rev
          in
          match Es_cfg.provenance_of_string prov with
          | Some p -> version := Some (rev, p)
          | None -> fail "unknown provenance tag %S" prov)
        | false, "selection" :: "scalars" :: rest ->
          sel := { !sel with Selection.scalars = split_commas (String.concat " " rest) }
        | false, "selection" :: "buffers" :: rest ->
          let buffers =
            List.map
              (fun item ->
                match String.split_on_char ':' item with
                | [ b; n ] -> (b, int_of_string n)
                | _ -> fail "bad buffer entry %s" item)
              (split_commas (String.concat " " rest))
          in
          sel := { !sel with Selection.buffers }
        | false, "selection" :: "fnptrs" :: rest ->
          sel := { !sel with Selection.fn_ptrs = split_commas (String.concat " " rest) }
        | false, "selection" :: "index" :: rest ->
          sel :=
            { !sel with Selection.index_params = split_commas (String.concat " " rest) }
        | false, "selection" :: "tracked" :: rest ->
          sel :=
            {
              !sel with
              Selection.tracked_buffers = split_commas (String.concat " " rest);
            }
        | false, [ "rationale"; name; tags ] ->
          let rules = List.filter_map rule_of_tag (split_commas tags) in
          sel := { !sel with Selection.rationale = (name, rules) :: !sel.Selection.rationale }
        | false, [ "node"; h; l; visits; taken; not_taken ] ->
          flush_node ();
          (* A node line ends any open cmd block; a stray allow after it
             must fail instead of silently extending the previous
             command's access set. *)
          current_cmd := None;
          let b = bref h l in
          check_block b;
          current_node := Some b;
          Hashtbl.replace node_acc b
            (int_of_string visits, int_of_string taken, int_of_string not_taken,
             [], [], [])
        | true, [ "case"; v; l ] -> (
          match !current_node with
          | Some b ->
            let vi, ta, nt, cases, its, sc = Hashtbl.find node_acc b in
            Hashtbl.replace node_acc b
              (vi, ta, nt, (Int64.of_string v, l) :: cases, its, sc)
          | None -> fail "case outside node")
        | true, [ "itarget"; v ] -> (
          match !current_node with
          | Some b ->
            let vi, ta, nt, cases, its, sc = Hashtbl.find node_acc b in
            Hashtbl.replace node_acc b (vi, ta, nt, cases, Int64.of_string v :: its, sc)
          | None -> fail "itarget outside node")
        | true, [ "succ"; h; l ] -> (
          match !current_node with
          | Some b ->
            let vi, ta, nt, cases, its, sc = Hashtbl.find node_acc b in
            Hashtbl.replace node_acc b (vi, ta, nt, cases, its, bref h l :: sc)
          | None -> fail "succ outside node")
        | false, [ "cmd"; h; l; v ] ->
          flush_node ();
          let d = bref h l in
          check_block d;
          current_cmd := Some (Some (d, Int64.of_string v))
        | true, [ "allow"; h; l ] -> (
          match !current_cmd with
          | Some cmd ->
            let b = bref h l in
            check_block b;
            Es_cfg.import_access (get_spec ()) ~cmd b
          | None -> fail "allow outside cmd")
        | false, [ "nocmd"; h; l ] ->
          flush_node ();
          current_cmd := None;
          let b = bref h l in
          check_block b;
          Es_cfg.import_access (get_spec ()) ~cmd:None b
        | false, [ "end" ] ->
          flush_node ();
          current_cmd := None;
          saw_end := true
        | _ -> fail "unparseable line %S" line)
      lines;
    if not !saw_end then
      fail "missing end line: spec file is truncated";
    flush_node ();
    (match !version with
    | Some (revision, provenance) ->
      Es_cfg.set_version (get_spec ()) ~revision ~provenance
    | None -> ());
    Ok (get_spec ())
  with
  | Parse_error msg -> Error msg
  | Failure msg -> Error msg

(* Atomic, leak-free file writes: the text goes to a temp file in the
   target directory (same filesystem, so the rename is atomic), the fd is
   released by [Fun.protect] on any exception, and the destination is
   only ever replaced by a complete file. *)
let write_atomic path text =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  match
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc text)
  with
  | () -> Sys.rename tmp path
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let save spec path =
  match validate_names spec with
  | Error _ as e -> e
  | Ok () -> (
    match write_atomic path (to_string spec) with
    | () -> Ok ()
    | exception Sys_error msg -> Error msg)

let load ~program path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string ~program text
