(** Execution specification persistence.

    The paper's false-positive remedy (§VIII) is to build specifications
    once — e.g. at the device developer's site with an extensive test
    corpus — and distribute them.  This module serialises everything a
    specification {e learned} (node statistics, observed branch directions,
    switch cases, legitimate indirect targets, the command access table and
    the parameter selection) into a line-based text format; structural data
    (DSOD, NBTD) is reconstructed from the device program on load, so a
    specification only loads against the program it was trained for. *)

val to_string : Es_cfg.t -> string
(** Serialise.  The format is word/comma separated, so handler, label,
    parameter and buffer names must be free of spaces, commas and
    newlines; raises [Invalid_argument] when a name would not round-trip
    rather than emitting a corrupt spec.  The body ends with an [end]
    line followed by a [crc] trailer (CRC-32 of everything before the
    trailer), so corruption between save and load is detected.

    Versioning: an evolved spec (non-zero {!Es_cfg.revision} or
    non-[Trained] provenance) carries a [revision N <tag>] line; a
    pristine trained revision 0 omits it, so such a spec serialises
    byte-identically to files written before versioning existed, and
    legacy unversioned files load as revision 0 / trained. *)

val of_string :
  program:Devir.Program.t -> string -> (Es_cfg.t, string) result
(** Rebuild a specification.  Fails with a readable message when the text
    is malformed, references blocks/fields the program does not have, the
    [crc] trailer does not match the body, the [end] line is missing
    (truncation), or content follows [end].  Files predating the [crc]
    trailer load without digest verification. *)

val save : Es_cfg.t -> string -> (unit, string) result
(** [save spec path] writes the serialised form to a file.  Names are
    validated first ([Error] instead of a corrupt file), and the write is
    atomic: the text lands in a temp file in the same directory which is
    renamed over [path], so a crash or exception mid-write never leaves a
    truncated spec behind. *)

val load :
  program:Devir.Program.t -> string -> (Es_cfg.t, string) result
(** [load ~program path] reads a specification from a file. *)
