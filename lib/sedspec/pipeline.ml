type trainer = {
  cases : int;
  run_case : Vmm.Machine.t -> int -> unit;
}

type phase1 = {
  itc : Iptrace.Itc_cfg.t;
  usage : Progan.Usage.t;
  selection : Selection.t;
  observation_points : Devir.Program.bref list;
  trace_bytes : int;
}

type built = {
  spec : Es_cfg.t;
  p1 : phase1;
  logs : Ds_log.t;
  datadep : Datadep.report;
  reduced : int;
  arena : Compile.t;
  minimized : Minimize.report option;
}

let reset_device machine ~device =
  let interp = Vmm.Machine.interp_of machine device in
  Devir.Arena.reset (Interp.arena interp);
  Vmm.Machine.resume machine

let collect machine ~device trainer =
  reset_device machine ~device;
  let interp = Vmm.Machine.interp_of machine device in
  let program = Interp.program interp in
  let encoder = Iptrace.Encoder.create (Iptrace.Filter.for_program program) in
  let saved = Interp.hooks interp in
  Interp.set_hooks interp
    { saved with Interp.on_trace = Iptrace.Encoder.feed encoder };
  for case = 0 to trainer.cases - 1 do
    trainer.run_case machine case
  done;
  Interp.set_hooks interp saved;
  let packets = Iptrace.Encoder.packets encoder in
  let traces = Iptrace.Decoder.decode program packets in
  let itc = Iptrace.Itc_cfg.create program in
  List.iter (Iptrace.Itc_cfg.add_trace itc) traces;
  let usage = Progan.Usage.analyze program in
  let observed =
    List.map (fun (n : Iptrace.Itc_cfg.node) -> n.bref) (Iptrace.Itc_cfg.nodes itc)
  in
  let selection = Selection.select program usage ~observed in
  {
    itc;
    usage;
    selection;
    observation_points = Ds_log.observation_points program;
    trace_bytes = Iptrace.Encoder.trace_bytes encoder;
  }

(* The paper's trainer feeds the same samples again with the observation
   points instrumented; a trap during benign training would indicate a
   broken device model, so it is surfaced loudly. *)
let minimize_built b =
  let spec, report = Minimize.run b.spec in
  {
    b with
    spec;
    datadep = Datadep.analyze spec;
    arena = Compile.lower spec;
    minimized = Some report;
  }

let construct ?(reduce = true) ?(minimize = false) machine ~device p1 trainer =
  reset_device machine ~device;
  let program = Interp.program (Vmm.Machine.interp_of machine device) in
  let collector =
    Ds_log.Collector.attach machine ~device ~points:p1.observation_points
      ~state_params:p1.selection.Selection.scalars
  in
  for case = 0 to trainer.cases - 1 do
    Ds_log.Collector.begin_case collector;
    trainer.run_case machine case
  done;
  let logs = Ds_log.Collector.logs collector in
  Ds_log.Collector.detach collector;
  let spec = Es_cfg.create ~program ~selection:p1.selection in
  Es_cfg.add_logs spec logs;
  let reduced = if reduce then Es_cfg.reduce spec else 0 in
  let datadep = Datadep.analyze spec in
  (* Lower eagerly, exactly once, while [built] is still private to the
     constructing thread: every checker attached from this [built] shares
     this one immutable arena (the fleet cache hands the same [built] to
     every VM of a (device, version), across Runner domains). *)
  let arena = Compile.lower spec in
  let b = { spec; p1; logs; datadep; reduced; arena; minimized = None } in
  if minimize then minimize_built b else b

let build ?reduce ?minimize machine ~device trainer =
  let p1 = collect machine ~device trainer in
  construct ?reduce ?minimize machine ~device p1 trainer

let protect ?config machine ~device built =
  reset_device machine ~device;
  Checker.attach ?config ~compiled:built.arena machine ~spec:built.spec device

let pp_built ppf b =
  Format.fprintf ppf "@[<v>%a@,%a@,trace volume: %d bytes, %d logs, %d interactions@]"
    Es_cfg.pp_stats b.spec Datadep.pp_report b.datadep b.p1.trace_bytes
    (List.length b.logs)
    (Ds_log.interaction_count b.logs);
  match b.minimized with
  | None -> ()
  | Some r -> Format.fprintf ppf "@,%a" Minimize.pp_report r
