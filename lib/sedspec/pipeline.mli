(** End-to-end SEDSpec pipeline (paper Fig. 1).

    Phase 1 (data collection): run the benign training cases with the IPT
    simulator attached, decode the packet stream, build the ITC-CFG, and
    select the device state parameters; observation points are placed at
    the control-flow joints.

    Phase 2 (specification construction): re-run the training cases with
    observation points active, collect the device state change logs, run
    Algorithm 1, apply control-flow reduction and analyze data
    dependencies.

    Phase 3 (runtime protection): attach an ES-Checker built from the
    specification in front of the device. *)

type trainer = {
  cases : int;
  run_case : Vmm.Machine.t -> int -> unit;
      (** Drive one benign test case against the machine.  Must be
          replayable: the pipeline runs every case once per phase. *)
}

type phase1 = {
  itc : Iptrace.Itc_cfg.t;
  usage : Progan.Usage.t;
  selection : Selection.t;
  observation_points : Devir.Program.bref list;
  trace_bytes : int;  (** Encoded PT volume of the training run. *)
}

type built = {
  spec : Es_cfg.t;
  p1 : phase1;
  logs : Ds_log.t;
  datadep : Datadep.report;
  reduced : int;  (** Nodes removed by control-flow reduction. *)
  arena : Compile.t;
      (** The spec lowered once at construction: immutable, physically
          shared by every checker {!protect} attaches from this value. *)
  minimized : Minimize.report option;
      (** Present when the spec went through {!Minimize.run}; [spec],
          [datadep] and [arena] then describe the minimized spec. *)
}

val collect : Vmm.Machine.t -> device:string -> trainer -> phase1
(** Phase 1.  Resets the device control structure first. *)

val construct :
  ?reduce:bool ->
  ?minimize:bool ->
  Vmm.Machine.t ->
  device:string ->
  phase1 ->
  trainer ->
  built
(** Phase 2 ([reduce] defaults to [true]; [minimize], defaulting to
    [false], additionally applies {!minimize_built}). *)

val build :
  ?reduce:bool ->
  ?minimize:bool ->
  Vmm.Machine.t ->
  device:string ->
  trainer ->
  built
(** Phases 1 + 2. *)

val minimize_built : built -> built
(** Apply {!Minimize.run} to an already-built spec: replaces [spec],
    re-analyzes [datadep], re-lowers [arena] and records the report.
    Training artifacts ([p1], [logs], [reduced]) are kept from the
    source build. *)

val protect :
  ?config:Checker.config -> Vmm.Machine.t -> device:string -> built -> Checker.t
(** Phase 3: resets the device and attaches the checker. *)

val pp_built : Format.formatter -> built -> unit
