type severity = Critical | High | Medium

let severity_of (a : Checker.anomaly) =
  let base =
    match a.strategy with
    | Checker.Parameter_check -> Critical
    | Checker.Indirect_jump_check -> High
    | Checker.Conditional_jump_check -> Medium
    | Checker.Internal_error ->
      (* The checker itself misbehaved: the shadow can no longer be
         trusted, which is as bad as a confirmed exploitation signal. *)
      Critical
  in
  if a.pre_execution then base
  else
    (* Damage may already have happened: promote. *)
    match base with Medium -> High | High | Critical -> Critical

let severity_to_string = function
  | Critical -> "critical"
  | High -> "high"
  | Medium -> "medium"

type policy = Halt_vm | Rollback | Resume_with_warning

type event = {
  anomaly : Checker.anomaly;
  severity : severity;
  action : policy;
}

type mem_image = {
  arena_bytes : bytes;
  ram_bytes : bytes;
}

type breaker = { max_rollbacks : int; window : int }

type t = {
  machine : Vmm.Machine.t;
  device : string;
  checker : Checker.t;
  policy_of : severity -> policy;
  aux_drain : unit -> Checker.anomaly list;
  breaker : breaker option;
  mutable saved : mem_image;
  mutable events_rev : event list;
  mutable rollbacks : int;
  mutable ticks : int;
  mutable rollback_ticks_rev : int list;
      (** Tick indices at which a rollback was applied, newest first. *)
  mutable tripped : bool;
  mutable log_rev : string list;
}

let take_snapshot t =
  {
    arena_bytes =
      Devir.Arena.snapshot (Interp.arena (Vmm.Machine.interp_of t.machine t.device));
    ram_bytes = Vmm.Guest_mem.snapshot (Vmm.Machine.ram t.machine);
  }

let log_line t line = t.log_rev <- line :: t.log_rev

let create ?(policy_of = fun _ -> Rollback) ?(aux_drain = fun () -> [])
    ?breaker machine ~device checker =
  (match breaker with
  | Some (max_rollbacks, window) when max_rollbacks < 1 || window < 1 ->
    invalid_arg "Remedy.create: breaker thresholds must be >= 1"
  | _ -> ());
  let t =
    {
      machine;
      device;
      checker;
      policy_of;
      aux_drain;
      breaker =
        Option.map (fun (max_rollbacks, window) -> { max_rollbacks; window }) breaker;
      saved = { arena_bytes = Bytes.empty; ram_bytes = Bytes.empty };
      events_rev = [];
      rollbacks = 0;
      ticks = 0;
      rollback_ticks_rev = [];
      tripped = false;
      log_rev = [];
    }
  in
  t.saved <- take_snapshot t;
  t

(* A supervisor ticking on a timer must not crash because its tick raced
   the checker's halt: while halted, refreshing the rollback target would
   capture post-anomaly state, so skip it as a logged no-op instead. *)
let checkpoint t =
  if Vmm.Machine.halted t.machine then
    log_line t "checkpoint skipped: machine is halted"
  else t.saved <- take_snapshot t

let apply_rollback t =
  Devir.Arena.restore
    (Interp.arena (Vmm.Machine.interp_of t.machine t.device))
    t.saved.arena_bytes;
  Vmm.Guest_mem.restore (Vmm.Machine.ram t.machine) t.saved.ram_bytes;
  Vmm.Machine.resume t.machine;
  Checker.resync t.checker;
  t.rollbacks <- t.rollbacks + 1;
  t.rollback_ticks_rev <- t.ticks :: t.rollback_ticks_rev

(* Would one more rollback at the current tick exceed the breaker?  Counts
   rollbacks inside the trailing window, including the one about to be
   applied. *)
let breaker_would_trip t =
  match t.breaker with
  | None -> false
  | Some b ->
    let floor = t.ticks - b.window in
    let recent =
      List.fold_left
        (fun n tk -> if tk > floor then n + 1 else n)
        0 t.rollback_ticks_rev
    in
    recent + 1 > b.max_rollbacks

let tick t =
  t.ticks <- t.ticks + 1;
  if not (Vmm.Machine.halted t.machine) then begin
    (* Clean point: self-heal shadow drift (bounded), then advance the
       rollback target. *)
    (match Checker.heal t.checker with
    | Checker.Heal_clean -> ()
    | Checker.Heal_resynced n ->
      log_line t
        (Printf.sprintf "heal: resynced shadow (%d divergent parameters)" n)
    | Checker.Heal_exhausted n ->
      log_line t
        (Printf.sprintf
           "heal: budget exhausted, %d parameters still divergent" n));
    ignore (Checker.drain_anomalies t.checker);
    ignore (t.aux_drain ());
    Vmm.Machine.clear_warnings t.machine;
    t.saved <- take_snapshot t;
    []
  end
  else begin
    let anomalies = Checker.drain_anomalies t.checker @ t.aux_drain () in
    if anomalies = [] then
      (* Halted with nothing new to adjudicate: a manual halt, or a halt
         the breaker already escalated.  Leave the machine down — the
         empty fold below would otherwise default to resume. *)
      []
    else begin
    let events =
      List.map
        (fun anomaly ->
          let severity = severity_of anomaly in
          { anomaly; severity; action = t.policy_of severity })
        anomalies
    in
    (* The strongest requested action wins: Halt > Rollback > Resume. *)
    let decided =
      List.fold_left
        (fun acc e ->
          match (acc, e.action) with
          | Halt_vm, _ | _, Halt_vm -> Halt_vm
          | Rollback, _ | _, Rollback -> Rollback
          | Resume_with_warning, Resume_with_warning -> Resume_with_warning)
        Resume_with_warning events
    in
    (* Circuit breaker: a fault that re-trips the checker after every
       rollback would otherwise oscillate forever; past the threshold the
       supervisor stops spending rollbacks and leaves the VM down. *)
    let decided =
      if decided = Rollback && (t.tripped || breaker_would_trip t) then begin
        if not t.tripped then begin
          t.tripped <- true;
          match t.breaker with
          | Some b ->
            log_line t
              (Printf.sprintf
                 "circuit breaker: >%d rollbacks within %d ticks; escalating \
                  to halt"
                 b.max_rollbacks b.window)
          | None -> ()
        end;
        Halt_vm
      end
      else decided
    in
    (match decided with
    | Halt_vm -> ()
    | Rollback -> apply_rollback t
    | Resume_with_warning ->
      Vmm.Machine.resume t.machine;
      Checker.resync t.checker);
    t.events_rev <- List.rev_append events t.events_rev;
    events
    end
  end

let events t = List.rev t.events_rev
let rollbacks t = t.rollbacks
let breaker_tripped t = t.tripped
let log t = List.rev t.log_rev

(* --- Structured state (for the fleet governor / health JSON) ----------- *)

type snapshot = {
  s_ticks : int;
  s_events : int;
  s_rollbacks : int;
  s_rollbacks_in_window : int;
  s_breaker : (int * int) option;
  s_breaker_tripped : bool;
  s_halted : bool;
}

let snapshot t =
  let in_window =
    match t.breaker with
    | None -> t.rollbacks
    | Some b ->
      let floor = t.ticks - b.window in
      List.fold_left
        (fun n tk -> if tk > floor then n + 1 else n)
        0 t.rollback_ticks_rev
  in
  {
    s_ticks = t.ticks;
    s_events = List.length t.events_rev;
    s_rollbacks = t.rollbacks;
    s_rollbacks_in_window = in_window;
    s_breaker = Option.map (fun b -> (b.max_rollbacks, b.window)) t.breaker;
    s_breaker_tripped = t.tripped;
    s_halted = Vmm.Machine.halted t.machine;
  }

let pp_event ppf e =
  Format.fprintf ppf "[%s -> %s] %a"
    (severity_to_string e.severity)
    (match e.action with
    | Halt_vm -> "halt"
    | Rollback -> "rollback"
    | Resume_with_warning -> "resume")
    Checker.pp_anomaly e.anomaly
