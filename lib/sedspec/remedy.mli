(** Anomaly remediation (paper §VIII "Anomaly Defence", listed as future
    work): instead of only halting or warning, classify alerts by severity
    and optionally roll the virtual machine back to a checkpoint taken
    before the exploitation.

    A {!supervisor} wraps a protected machine.  The caller ticks it
    between I/O bursts: on clean ticks it refreshes its checkpoint (device
    control structures, guest RAM, interrupt state); when the checker has
    halted the VM it applies the configured {!policy} — halt (paper
    default), roll back to the last clean checkpoint and resume, or resume
    with a warning only. *)

type severity = Critical | High | Medium

val severity_of : Checker.anomaly -> severity
(** Alert classification by strategy and timing: parameter-check anomalies
    are [Critical] (directly tied to exploitation, no false positives);
    indirect-jump anomalies are [High]; conditional-jump anomalies are
    [Medium] (may be rare-command false positives); contained internal
    checker errors are [Critical] (the shadow can no longer be trusted).
    Post-execution detections are promoted one level, since damage may
    already exist. *)

val severity_to_string : severity -> string

type policy =
  | Halt_vm  (** Leave the machine halted (the paper's protection mode). *)
  | Rollback
      (** Restore the last clean checkpoint and resume — the paper's
          proposed rollback remedy. *)
  | Resume_with_warning
      (** Clear the halt and keep going (availability first). *)

type event = {
  anomaly : Checker.anomaly;
  severity : severity;
  action : policy;
}

type t

val create :
  ?policy_of:(severity -> policy) ->
  ?aux_drain:(unit -> Checker.anomaly list) ->
  ?breaker:int * int ->
  Vmm.Machine.t ->
  device:string ->
  Checker.t ->
  t
(** [create machine ~device checker] builds a supervisor.  [policy_of]
    maps severities to actions (default: everything rolls back).
    [aux_drain] feeds anomalies from a second enforcement layer (the
    guest-side response validator) into every tick's adjudication, so a
    halt raised by that layer — whose anomalies the checker never sees —
    is classified and remedied instead of leaving the VM down forever;
    on clean ticks it is drained as benign bookkeeping like the
    checker's own queue (default: none).
    [breaker:(n, w)] arms the circuit breaker: when applying a rollback
    would make more than [n] rollbacks within the last [w] ticks, the
    decision escalates to [Halt_vm] instead and stays escalated — a fault
    that re-trips the checker after every restore must not oscillate
    forever.  Both thresholds must be [>= 1]; default: no breaker.  An
    initial checkpoint is taken immediately. *)

val checkpoint : t -> unit
(** Capture device control structure + guest RAM as the rollback target.
    While the machine is halted this is a no-op recorded in {!log}
    (refreshing the target would capture post-anomaly state; callers
    ticking on a timer must not crash). *)

val tick : t -> event list
(** Inspect the machine: if it is running, run one bounded
    [Checker.heal] pass, drain (benign bookkeeping) and refresh the
    checkpoint; if it was halted by anomalies, classify them, apply the
    policy — subject to the circuit breaker — and return the events. *)

val events : t -> event list
(** All events so far, oldest first. *)

val rollbacks : t -> int

val breaker_tripped : t -> bool
(** The circuit breaker escalated at least once (latched). *)

val log : t -> string list
(** Operational log, oldest first: skipped checkpoints, heal outcomes,
    breaker escalations. *)

(** Structured supervisor state.  Everything here used to be reachable
    only by parsing {!log} lines; the fleet governor and the health
    snapshot JSON consume this record instead of scraping strings. *)
type snapshot = {
  s_ticks : int;  (** {!tick} calls so far. *)
  s_events : int;  (** Adjudicated anomaly events so far. *)
  s_rollbacks : int;  (** Rollbacks applied (lifetime). *)
  s_rollbacks_in_window : int;
      (** Rollbacks inside the trailing breaker window; equals
          [s_rollbacks] when no breaker is armed. *)
  s_breaker : (int * int) option;  (** The armed [(max_rollbacks, window)]. *)
  s_breaker_tripped : bool;  (** Latched escalation (see {!breaker_tripped}). *)
  s_halted : bool;  (** The supervised machine is currently halted. *)
}

val snapshot : t -> snapshot
(** Consistent point-in-time view of the supervisor; pure read, never
    advances the tick counter or touches the checkpoint. *)

val pp_event : Format.formatter -> event -> unit
