open Devir

(* DOT double-quoted string escaping: backslashes and quotes are escaped,
   newlines become the \n line-break escape. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_id (b : Program.bref) =
  Printf.sprintf "\"%s_%s\"" (escape b.handler) (escape b.label)

let to_dot spec =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph \"escfg_%s\" {\n" (Program.name (Es_cfg.program spec));
  pf "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  List.iter
    (fun (n : Es_cfg.node) ->
      let shape, color =
        match n.kind with
        | Block.Entry -> ("ellipse", "lightblue")
        | Block.Exit -> ("ellipse", "lightgray")
        | Block.Cmd_decision -> ("diamond", "gold")
        | Block.Cmd_end -> ("box", "palegreen")
        | Block.Normal -> ("box", "white")
      in
      let extra =
        (if n.sync_locals <> [] then "\\n[sync point]" else "")
        ^
        match n.term with
        | Term.Branch _ when (n.taken = 0) <> (n.not_taken = 0) ->
          "\\n[one-sided]"
        | _ -> ""
      in
      pf "  %s [label=\"%s\\nvisits=%d%s\", shape=%s, style=filled, fillcolor=%s];\n"
        (node_id n.bref)
        (escape (Program.bref_to_string n.bref))
        n.visits extra shape color)
    (Es_cfg.nodes spec);
  (* Edges: observed successors; annotate conditional direction counts. *)
  List.iter
    (fun (n : Es_cfg.node) ->
      List.iter
        (fun succ ->
          let label =
            match n.term with
            | Term.Branch (_, t, _) when succ.Program.label = t ->
              Printf.sprintf " [label=\"T:%d\"]" n.taken
            | Term.Branch (_, _, f) when succ.Program.label = f ->
              Printf.sprintf " [label=\"N:%d\"]" n.not_taken
            | Term.Icall _ ->
              Printf.sprintf " [label=\"icall %s\", style=dashed]"
                (String.concat ","
                   (List.map (Printf.sprintf "0x%Lx") n.itargets))
            | _ -> ""
          in
          (* Only draw edges to nodes still in the (reduced) graph. *)
          if Es_cfg.node spec succ <> None then
            pf "  %s -> %s%s;\n" (node_id n.bref) (node_id succ) label)
        n.succs)
    (Es_cfg.nodes spec);
  pf "}\n";
  Buffer.contents buf

let save_dot spec path =
  let oc = open_out path in
  output_string oc (to_dot spec);
  close_out oc
