type cfg = { base : int; cap : int; jitter : float }

let default = { base = 1; cap = 64; jitter = 0.25 }

let validate { base; cap; jitter } =
  if base < 1 then invalid_arg "Backoff: base must be >= 1";
  if cap < base then invalid_arg "Backoff: cap must be >= base";
  if jitter < 0.0 || jitter >= 1.0 then
    invalid_arg "Backoff: jitter must be in [0, 1)"

let nominal cfg ~attempt =
  validate cfg;
  if attempt < 0 then invalid_arg "Backoff.nominal: attempt must be >= 0";
  (* [base lsl attempt] overflows past 62 doublings; saturate first. *)
  if attempt >= 62 then cfg.cap
  else
    let n = cfg.base lsl attempt in
    if n < cfg.base || n > cfg.cap then cfg.cap else n

(* Key the jitter stream by (seed, attempt) through one splitmix step per
   component: the delay for attempt k never depends on whether attempts
   0..k-1 drew their jitter, so schedules compose (a caller may probe a
   single attempt's delay without replaying the prefix). *)
let delay cfg ~seed ~attempt =
  let n = nominal cfg ~attempt in
  if cfg.jitter = 0.0 then n
  else
    let key = Int64.add seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (attempt + 1))) in
    let u = Prng.float (Prng.create key) 1.0 in
    (* u in [0,1) -> offset in [-jitter, +jitter) of the nominal. *)
    let d = float_of_int n *. (1.0 +. (cfg.jitter *. ((2.0 *. u) -. 1.0))) in
    max 0 (int_of_float (Float.round d))

type 'e failure = { error : 'e; attempts : int; delay_total : int }

let retry ?(cfg = default) ~seed ~max_attempts f =
  if max_attempts < 1 then invalid_arg "Backoff.retry: max_attempts must be >= 1";
  let rec go attempt spent =
    match f ~attempt with
    | Ok v -> Ok (v, spent)
    | Error e ->
      if attempt + 1 >= max_attempts then
        Error { error = e; attempts = attempt + 1; delay_total = spent }
      else go (attempt + 1) (spent + delay cfg ~seed ~attempt)
  in
  go 0 0
