(** Seeded retry with exponential backoff and deterministic jitter.

    Transient operations (a spec-cache build racing an injected fault, a
    CRC-failing persisted-spec load) are retried under an exponential
    delay schedule.  Delays are {e logical units}, not wall-clock sleeps:
    the fleet supervisor accounts them in its report instead of blocking
    a domain, which keeps every run bit-identical for any [--jobs] and
    lets tests assert the exact schedule.

    Jitter is drawn from the splitmix64 generator keyed by
    [(seed, attempt)], so the whole schedule is a pure function of the
    seed: the same seed replays the same delays, and distinct seeds
    de-synchronise retry storms.  For [jitter <= 1/3] the jittered
    delays are monotone (non-strict) in the attempt number while the
    nominal delay is still doubling below [cap] — the qcheck properties
    in [test_util.ml] pin both guarantees. *)

type cfg = {
  base : int;  (** Nominal delay of attempt 0 (logical units, >= 1). *)
  cap : int;  (** Nominal delays saturate here (>= base). *)
  jitter : float;  (** Relative band half-width, in [0, 1). *)
}

val default : cfg
(** [{ base = 1; cap = 64; jitter = 0.25 }]. *)

val nominal : cfg -> attempt:int -> int
(** [min cap (base * 2^attempt)], saturating (never overflows). *)

val delay : cfg -> seed:int64 -> attempt:int -> int
(** The jittered delay before retry number [attempt] (0-based): a
    deterministic value in [[nominal * (1 - jitter), nominal * (1 + jitter)]]
    (rounded to the nearest unit, never negative), depending only on
    [cfg], [seed] and [attempt]. *)

type 'e failure = {
  error : 'e;  (** The last attempt's error. *)
  attempts : int;  (** Attempts performed (= [max_attempts]). *)
  delay_total : int;  (** Logical delay units spent between attempts. *)
}

val retry :
  ?cfg:cfg ->
  seed:int64 ->
  max_attempts:int ->
  (attempt:int -> ('a, 'e) result) ->
  ('a * int, 'e failure) result
(** [retry ~seed ~max_attempts f] calls [f ~attempt:0], [f ~attempt:1],
    … until one returns [Ok] or [max_attempts] (>= 1) attempts are
    exhausted.  On success returns the value and the logical delay spent
    waiting before it; on failure, the last error with the attempt and
    delay accounting.  Exceptions raised by [f] are not caught — wrap
    fallible operations into [result] at the call site so the retry
    policy stays visible. *)
