(* Table-driven CRC-32 over the reflected IEEE polynomial.  The table is
   built once at module init; digesting is one xor + shift + lookup per
   byte, so verifying a multi-KB spec costs microseconds. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let to_hex v = Printf.sprintf "%08lx" (Int32.logand v 0xFFFFFFFFl)

let of_hex s =
  if String.length s <> 8 then None
  else if not (String.for_all (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false) s)
  then None
  else Some (Int32.of_string ("0x" ^ s))
