(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).

    Used as an integrity trailer on persisted execution specifications:
    cheap enough to verify on every load, and any single bit flip or
    truncation of the covered bytes changes the digest.  Not a
    cryptographic MAC — it detects substrate corruption, not tampering. *)

val crc32 : string -> int32
(** Digest of the whole string, initial value [0xFFFFFFFF], final xor
    [0xFFFFFFFF] (the standard zlib/PNG convention). *)

val to_hex : int32 -> string
(** Fixed-width lowercase hex (8 digits), the persisted form. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] when the string is not 8 hex digits. *)
