(* Minimal deterministic JSON emitter: object fields are emitted in the
   order given, floats through %.17g (shortest round-trip not needed —
   reports compare textually), strings escaped per RFC 8259.  No parser:
   the repo only ever writes JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit b ~indent ~level t =
  let pad n = Buffer.add_string b (String.make (n * indent) ' ') in
  match t with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v -> Buffer.add_string b (float_repr v)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape_string s);
    Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_string b "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string b ",\n";
        pad (level + 1);
        emit b ~indent ~level:(level + 1) item)
      items;
    Buffer.add_char b '\n';
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",\n";
        pad (level + 1);
        Buffer.add_char b '"';
        Buffer.add_string b (escape_string k);
        Buffer.add_string b "\": ";
        emit b ~indent ~level:(level + 1) v)
      fields;
    Buffer.add_char b '\n';
    pad level;
    Buffer.add_char b '}'

let to_string ?(indent = 2) t =
  let b = Buffer.create 1024 in
  emit b ~indent ~level:0 t;
  Buffer.add_char b '\n';
  Buffer.contents b
