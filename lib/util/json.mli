(** Deterministic JSON emitter.

    Object fields come out in the order given and nothing in the output
    depends on hashing or machine state, so two runs that build the same
    value produce byte-identical text — the property the fuzzer's
    [--jobs N] = [--jobs 1] report check relies on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape_string : string -> string
(** RFC 8259 string-body escaping (no surrounding quotes). *)

val to_string : ?indent:int -> t -> string
(** Pretty-printed with a trailing newline; [indent] defaults to 2. *)
