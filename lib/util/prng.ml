type t = { mutable state : int64 }

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64: state advances by the golden-ratio increment; output is the
   finalizer of Stafford's mix13 variant. *)
let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  (* Draws are uniform on [0, 2^62).  A plain [r mod bound] favours small
     residues whenever bound does not divide 2^62; reject the biased tail
     (r > cut, at most one draw in ~4.6e18 for small bounds) instead.
     [cut] is the largest r with r mod bound exact, i.e. 2^62 - (2^62 mod
     bound) - 1; note 2^62 = max_int + 1 on 64-bit OCaml. *)
  let rem = ((max_int mod bound) + 1) mod bound in
  let cut = max_int - rem in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
    if r > cut then draw () else r mod bound
  in
  draw ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  r /. 9007199254740992.0 *. bound

let chance t p = float t 1.0 < p

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t l =
  assert (l <> []);
  List.nth l (int t (List.length l))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b

let split t = create (next t)
