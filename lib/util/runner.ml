(* Fixed-size domain pool with an order-preserving work queue.

   [map ~jobs f items] applies [f] to every item, fanning the work out
   across at most [jobs] domains.  Dispatch order is the list order (an
   atomic cursor over the task array), results are returned in input
   order, and a task failure never cancels its siblings: every task runs
   to completion, then the first failure (in input order) is re-raised
   with its original backtrace.

   [jobs <= 1] runs everything in the calling domain — same semantics,
   no spawn — so a serial run is the exact reference for a parallel one.

   Determinism is the caller's contract: tasks must not share mutable
   state, and any randomness must come from a per-task seed.
   [map_seeded] supplies that seed by splitting the base seed with
   splitmix64 (see {!Prng}): task [i] always receives the [i]-th output
   of the stream seeded at [seed], so results are bit-identical
   regardless of how many domains execute them. *)

type 'b cell =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let run_one results tasks i =
  results.(i) <-
    (match tasks.(i) () with
    | v -> Done v
    | exception e -> Failed (e, Printexc.get_raw_backtrace ()))

let run_tasks ~jobs (tasks : (unit -> 'b) array) : 'b array =
  let n = Array.length tasks in
  let results = Array.make n Pending in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then
    for i = 0 to n - 1 do
      run_one results tasks i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_one results tasks i;
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains
  end;
  Array.map
    (function
      | Done v -> v
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending -> assert false)
    results

let mapi ?(jobs = 1) f items =
  let tasks = Array.of_list (List.mapi (fun i x -> fun () -> f i x) items) in
  Array.to_list (run_tasks ~jobs tasks)

let map ?jobs f items = mapi ?jobs (fun _ x -> f x) items

let map_seeded ?jobs ~seed f items =
  let rng = Prng.create seed in
  let seeds = Array.init (List.length items) (fun _ -> Prng.next rng) in
  mapi ?jobs (fun i x -> f ~seed:seeds.(i) x) items

let iter ?jobs (f : 'a -> unit) items = ignore (map ?jobs f items)
