(** Fixed-size domain pool with an order-preserving work queue.

    The experiment harnesses are dominated by independent per-device
    soaks and sweeps; this module fans them out across OCaml 5 domains.
    Tasks are dispatched in list order off an atomic cursor, results are
    returned in input order, and [jobs <= 1] (the default) runs in the
    calling domain with identical semantics, so a serial run is the
    exact reference for a parallel one.

    Tasks must not share mutable state; any randomness must come from a
    per-task seed (see {!map_seeded}). *)

val default_jobs : unit -> int
(** The runtime's recommended domain count (at least 1). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] is [List.map f items] computed on up to [jobs]
    domains.  Every task runs to completion even if a sibling fails;
    afterwards the first failure in input order is re-raised with its
    original backtrace. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit

val map_seeded :
  ?jobs:int -> seed:int64 -> (seed:int64 -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map}, but task [i] receives the [i]-th output of the
    splitmix64 stream seeded at [seed] as its private PRNG seed.  Seeds
    depend only on [seed] and the task's position — never on [jobs] —
    so results are bit-identical regardless of how many domains run. *)
