type t = {
  mem : bytes;
  mutable write_hook : (int64 -> int -> unit) option;
  mutable read_fault : (int64 -> int -> int) option;
}

let create size = { mem = Bytes.make size '\000'; write_hook = None; read_fault = None }

let set_write_hook t hook = t.write_hook <- hook

let set_read_fault t f = t.read_fault <- f

let size t = Bytes.length t.mem

let read_byte t addr =
  let i = Int64.to_int addr in
  let b = if i >= 0 && i < Bytes.length t.mem then Char.code (Bytes.get t.mem i) else 0 in
  match t.read_fault with None -> b | Some f -> f addr b land 0xFF

let write_byte t addr v =
  let i = Int64.to_int addr in
  if i >= 0 && i < Bytes.length t.mem then begin
    Bytes.set t.mem i (Char.chr (v land 0xFF));
    match t.write_hook with None -> () | Some f -> f addr (v land 0xFF)
  end

let read t addr w =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        (Int64.logor (Int64.shift_left acc 8)
           (Int64.of_int (read_byte t (Int64.add addr (Int64.of_int i)))))
  in
  go (Devir.Width.bytes w - 1) 0L

let write t addr w v =
  for i = 0 to Devir.Width.bytes w - 1 do
    write_byte t
      (Int64.add addr (Int64.of_int i))
      (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL))
  done

let blit_in t addr src =
  for i = 0 to Bytes.length src - 1 do
    write_byte t (Int64.add addr (Int64.of_int i)) (Char.code (Bytes.get src i))
  done

let blit_out t addr len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set out i (Char.chr (read_byte t (Int64.add addr (Int64.of_int i))))
  done;
  out

let fill t addr len byte =
  for i = 0 to len - 1 do
    write_byte t (Int64.add addr (Int64.of_int i)) byte
  done

(* Host-side reset: does not fire the write hook. *)
let clear t = Bytes.fill t.mem 0 (Bytes.length t.mem) '\000'

let snapshot t = Bytes.copy t.mem

let restore t saved =
  if Bytes.length saved <> Bytes.length t.mem then
    invalid_arg "Guest_mem.restore: size mismatch";
  Bytes.blit saved 0 t.mem 0 (Bytes.length saved)

let access t =
  { Interp.read_byte = read_byte t; write_byte = write_byte t }
