(** Guest physical memory.

    A flat RAM image the emulated devices DMA into and out of, and that the
    guest-side drivers in the workload library use to stage descriptors,
    ring buffers and data pages — the same role guest RAM plays between a
    real driver and QEMU. *)

type t

val create : int -> t
(** [create size] allocates [size] bytes of zeroed RAM. *)

val size : t -> int

val read_byte : t -> int64 -> int
(** Out-of-range reads return 0 (like a missing physical page). *)

val write_byte : t -> int64 -> int -> unit
(** Out-of-range writes are dropped. *)

val set_write_hook : t -> (int64 -> int -> unit) option -> unit
(** Observe every in-range byte written (all write paths funnel through
    {!write_byte}).  Used by the fuzzer's input recorder to capture the
    guest-side memory a workload stages; [None] removes the hook. *)

val set_read_fault : t -> (int64 -> int -> int) option -> unit
(** Interpose on every byte read (all read paths funnel through
    {!read_byte}): [f addr byte] returns the byte the reader sees,
    truncated to 8 bits.  Used by the fault-injection harness to model
    corrupted or short DMA data.  The function must be a pure function
    of [(addr, byte)] — the checker's shadow walk and the device itself
    read the same addresses and must observe the same values, in either
    checker engine.  [None] removes the fault. *)

val read : t -> int64 -> Devir.Width.t -> int64
(** Little-endian scalar read. *)

val write : t -> int64 -> Devir.Width.t -> int64 -> unit

val blit_in : t -> int64 -> bytes -> unit
(** Copy bytes into RAM at an address. *)

val blit_out : t -> int64 -> int -> bytes
(** Copy [len] bytes out of RAM. *)

val fill : t -> int64 -> int -> int -> unit
(** [fill t addr len byte]. *)

val clear : t -> unit
(** Zero the whole image (host-side reset; the write hook does not fire). *)

val snapshot : t -> bytes
val restore : t -> bytes -> unit
(** Save / restore the whole RAM image (same size required). *)

val access : t -> Interp.guest
(** The interpreter-facing access record. *)
