type request = {
  device : string;
  handler : string;
  params : (string * int64) list;
}

type verdict = Allow | Warn of string | Halt of string

type interposer = {
  before : request -> verdict;
  after : request -> Interp.Event.outcome -> verdict;
}

type io_result =
  | Io_ok of int64 option
  | Io_blocked of string
  | Io_fault of Interp.Event.trap
  | Io_no_device
  | Io_vm_halted

type device_binding = {
  program : Devir.Program.t;
  arena : Devir.Arena.t;
  pmio : (int64 * int) list;
  pmio_read : string option;
  pmio_write : string option;
  mmio : (int64 * int) list;
  mmio_read : string option;
  mmio_write : string option;
}

type attached = {
  binding : device_binding;
  interp : Interp.t;
  mutable interposer : interposer option;
}

type t = {
  ram : Guest_mem.t;
  irq : Irq.t;
  devices : (string, attached) Hashtbl.t;
  mutable order : string list;
  mutable halted : bool;
  mutable halt_reason : string option;
  mutable warnings_rev : string list;
  mutable traps_rev : (string * Interp.Event.trap) list;
  vmexit_cost : int;
}

(* Burn a calibrated amount of CPU per dispatched I/O, standing in for the
   KVM exit + userspace dispatch that dominates per-access cost on a real
   host.  Volatile-ish accumulator so the loop is not optimised away. *)
let spin_sink = ref 0

let spin n =
  let acc = ref !spin_sink in
  for i = 1 to n do
    acc := (!acc + i) land 0xFFFFFF
  done;
  spin_sink := !acc

let create ?(ram_size = 16 * 1024 * 1024) ?(vmexit_cost = 2000) () =
  {
    ram = Guest_mem.create ram_size;
    irq = Irq.create ();
    devices = Hashtbl.create 8;
    order = [];
    halted = false;
    halt_reason = None;
    warnings_rev = [];
    traps_rev = [];
    vmexit_cost;
  }

let ram t = t.ram
let irq t = t.irq

let ranges_overlap (b1, l1) (b2, l2) =
  let e1 = Int64.add b1 (Int64.of_int l1) and e2 = Int64.add b2 (Int64.of_int l2) in
  Int64.compare b1 e2 < 0 && Int64.compare b2 e1 < 0

let attach t binding =
  let name = Devir.Program.name binding.program in
  if Hashtbl.mem t.devices name then
    invalid_arg (Printf.sprintf "Machine.attach: duplicate device %s" name);
  Hashtbl.iter
    (fun other a ->
      let clash kind mine theirs =
        List.iter
          (fun r1 ->
            List.iter
              (fun r2 ->
                if ranges_overlap r1 r2 then
                  invalid_arg
                    (Printf.sprintf "Machine.attach: %s range of %s overlaps %s"
                       kind name other))
              theirs)
          mine
      in
      clash "pmio" binding.pmio a.binding.pmio;
      clash "mmio" binding.mmio a.binding.mmio)
    t.devices;
  let hooks =
    {
      Interp.silent_hooks with
      Interp.on_irq =
        (fun up ->
          if up then Irq.raise_line t.irq name else Irq.lower_line t.irq name);
    }
  in
  let interp =
    Interp.create ~hooks ~program:binding.program ~arena:binding.arena
      ~guest:(Guest_mem.access t.ram) ()
  in
  Irq.register t.irq name;
  Hashtbl.add t.devices name { binding; interp; interposer = None };
  t.order <- t.order @ [ name ]

let get t name =
  match Hashtbl.find_opt t.devices name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Machine: unknown device %s" name)

let set_interposer t name ip = (get t name).interposer <- Some ip
let clear_interposer t name = (get t name).interposer <- None
let interposer_of t name = (get t name).interposer
let interp_of t name = (get t name).interp
let device_names t = t.order

let halted t = t.halted
let halt_reason t = t.halt_reason

let resume t =
  t.halted <- false;
  t.halt_reason <- None

let warnings t = List.rev t.warnings_rev
let clear_warnings t = t.warnings_rev <- []
let last_traps t = t.traps_rev
let clear_traps t = t.traps_rev <- []

let apply_verdict t v =
  match v with
  | Allow -> ()
  | Warn w -> t.warnings_rev <- w :: t.warnings_rev
  | Halt reason ->
    t.halted <- true;
    t.halt_reason <- Some reason

let dispatch t (a : attached) request =
  if t.halted then Io_vm_halted
  else begin
    if t.vmexit_cost > 0 then spin t.vmexit_cost;
    let blocked =
      match a.interposer with
      | None -> None
      | Some ip -> (
        match ip.before request with
        | Allow -> None
        | Warn w ->
          t.warnings_rev <- w :: t.warnings_rev;
          None
        | Halt reason ->
          t.halted <- true;
          t.halt_reason <- Some reason;
          Some reason)
    in
    match blocked with
    | Some reason -> Io_blocked reason
    | None ->
      let outcome =
        Interp.run a.interp ~handler:request.handler ~params:request.params
      in
      (match a.interposer with
      | None -> ()
      | Some ip -> apply_verdict t (ip.after request outcome));
      (match outcome with
      | Interp.Event.Done { response } -> Io_ok response
      | Interp.Event.Trapped trap ->
        t.traps_rev <- (request.device, trap) :: t.traps_rev;
        Io_fault trap)
  end

let in_range addr (base, len) =
  Int64.unsigned_compare addr base >= 0
  && Int64.unsigned_compare addr (Int64.add base (Int64.of_int len)) < 0

let find_route t ~mmio addr =
  let pick (a : attached) =
    let ranges = if mmio then a.binding.mmio else a.binding.pmio in
    List.find_opt (in_range addr) ranges |> Option.map (fun r -> (a, r))
  in
  List.fold_left
    (fun acc name ->
      match acc with Some _ -> acc | None -> pick (Hashtbl.find t.devices name))
    None t.order

let access t ~mmio ~write ~addr ~size ~data =
  match find_route t ~mmio addr with
  | None -> Io_no_device
  | Some (a, (base, _len)) -> (
    let handler =
      if mmio then
        if write then a.binding.mmio_write else a.binding.mmio_read
      else if write then a.binding.pmio_write
      else a.binding.pmio_read
    in
    match handler with
    | None -> Io_no_device
    | Some handler ->
      let params =
        [
          ("addr", addr);
          ("offset", Int64.sub addr base);
          ("size", Int64.of_int size);
          ("data", data);
        ]
      in
      dispatch t a
        { device = Devir.Program.name a.binding.program; handler; params })

let io_read t ~port ~size =
  access t ~mmio:false ~write:false ~addr:port ~size ~data:0L

let io_write t ~port ~size ~data =
  access t ~mmio:false ~write:true ~addr:port ~size ~data

let mmio_read t ~addr ~size =
  access t ~mmio:true ~write:false ~addr ~size ~data:0L

let mmio_write t ~addr ~size ~data =
  access t ~mmio:true ~write:true ~addr ~size ~data

let inject t ~device ~handler ~params =
  let a = get t device in
  dispatch t a { device; handler; params }
