(** The machine model: KVM/QEMU's dispatch role.

    Guest I/O (PMIO/MMIO) is routed to the registered device whose range
    covers the address, exactly where KVM forwards an exit to QEMU's device
    emulation.  An optional {e interposer} — SEDSpec's ES-Checker proxy —
    sees every request before the device runs and can veto it; it also sees
    the execution outcome afterwards (for sync-point resolution and
    post-hoc verdicts).

    Devices can also receive out-of-band input ({!inject}) for paths that
    do not originate from a CPU exit, such as a network card receiving a
    frame from the host side. *)

type request = {
  device : string;
  handler : string;
  params : (string * int64) list;
}

type verdict =
  | Allow
  | Warn of string  (** Record a warning; execution proceeds / stands. *)
  | Halt of string  (** Stop the device and the virtual machine. *)

type interposer = {
  before : request -> verdict;
  after : request -> Interp.Event.outcome -> verdict;
}

type io_result =
  | Io_ok of int64 option  (** Response data for reads. *)
  | Io_blocked of string   (** Interposer halted before execution. *)
  | Io_fault of Interp.Event.trap
  | Io_no_device
  | Io_vm_halted  (** The VM was already halted by a previous verdict. *)

type device_binding = {
  program : Devir.Program.t;
  arena : Devir.Arena.t;
  pmio : (int64 * int) list;       (** [base, len] port ranges. *)
  pmio_read : string option;       (** Handler for port reads. *)
  pmio_write : string option;
  mmio : (int64 * int) list;
  mmio_read : string option;
  mmio_write : string option;
}

type t

val create : ?ram_size:int -> ?vmexit_cost:int -> unit -> t
(** Default RAM: 16 MiB.  [vmexit_cost] is the number of iterations of a
    calibrated busy loop burned per dispatched I/O access, standing in for
    the KVM exit + userspace dispatch cost that dominates per-access
    latency on a real host (default 2000, roughly a microsecond; 0
    disables it — the perf benches ablate this). *)

val ram : t -> Guest_mem.t
val irq : t -> Irq.t

val attach : t -> device_binding -> unit
(** Registers the device, creates its interpreter (wired to machine RAM and
    the IRQ controller) and registers its IRQ line under the program
    name.  Raises [Invalid_argument] on overlapping I/O ranges or duplicate
    device names. *)

val set_interposer : t -> string -> interposer -> unit
(** Install an interposer in front of one device. *)

val clear_interposer : t -> string -> unit

val interposer_of : t -> string -> interposer option
(** The currently installed interposer, if any — lets a second enforcement
    layer (the guest-side validator) chain in front of the checker's
    interposer instead of displacing it. *)

val interp_of : t -> string -> Interp.t
(** The device's interpreter, e.g. to install observation points or trace
    hooks during SEDSpec's data-collection phase. *)

val device_names : t -> string list

val io_read : t -> port:int64 -> size:int -> io_result
val io_write : t -> port:int64 -> size:int -> data:int64 -> io_result
val mmio_read : t -> addr:int64 -> size:int -> io_result
val mmio_write : t -> addr:int64 -> size:int -> data:int64 -> io_result

val inject :
  t -> device:string -> handler:string -> params:(string * int64) list ->
  io_result
(** Deliver an out-of-band request (network receive, timer callback). *)

val halted : t -> bool
(** The VM was halted by an interposer verdict. *)

val halt_reason : t -> string option

val resume : t -> unit
(** Clear the halted flag (experiments restart the "VM" between cases). *)

val warnings : t -> string list
(** Interposer warnings, oldest first. *)

val clear_warnings : t -> unit

val last_traps : t -> (string * Interp.Event.trap) list
(** Device faults observed since the last [clear_traps], newest first. *)

val clear_traps : t -> unit
