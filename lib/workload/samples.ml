module Prng = Sedspec_util.Prng

type interaction_mode = Sequential | Random | Random_delay

let mode_to_string = function
  | Sequential -> "sequential"
  | Random -> "random"
  | Random_delay -> "random+delay"

module type DEVICE_WORKLOAD = sig
  val device_name : string
  val paper_version : Devices.Qemu_version.t
  val make_machine : ?vmexit_cost:int -> Devices.Qemu_version.t -> Vmm.Machine.t
  val trainer : cases:int -> Sedspec.Pipeline.trainer

  val soak_case :
    mode:interaction_mode ->
    rng:Prng.t ->
    rare_prob:float ->
    ops:int ->
    Vmm.Machine.t ->
    unit

  val ops_per_hour : interaction_mode -> int
end

let make_machine_for (device : Devices.Qemu_version.t -> Devices.Device.t)
    ?(vmexit_cost = 0) version =
  let m = Vmm.Machine.create ~vmexit_cost () in
  let dev = device version in
  Vmm.Machine.attach m (dev.Devices.Device.make_binding ());
  m

(* Pick the k-th element for sequential mode, a random one otherwise. *)
let pick_op ~mode ~rng k ops =
  match mode with
  | Sequential -> ops.(k mod Array.length ops)
  | Random | Random_delay -> Prng.pick rng ops

module Fdc_w = struct
  let device_name = Devices.Fdc.name
  let paper_version = Devices.Qemu_version.v 2 3 0

  let make_machine ?vmexit_cost version =
    make_machine_for (fun version -> Devices.Fdc.device ~version) ?vmexit_cost
      version

  let seek_read_write d ~track ~head ~sect =
    ignore (Fdc_driver.seek d ~drive:0 ~head ~track);
    ignore (Fdc_driver.sense_interrupt d);
    (match Fdc_driver.read_sector d ~drive:0 ~head ~track ~sect with
    | Some _ -> ()
    | None -> ());
    let data = Bytes.make 512 (Char.chr ((track + sect) land 0xFF)) in
    ignore (Fdc_driver.write_sector d ~drive:0 ~head ~track ~sect:(sect + 1) data)

  let trainer ~cases =
    {
      Sedspec.Pipeline.cases;
      run_case =
        (fun m case ->
          let d = Fdc_driver.create m in
          ignore (Fdc_driver.reset d);
          ignore (Fdc_driver.specify d ~srt:(0xA0 + (case mod 8)) ~hut:(case mod 16));
          ignore (Fdc_driver.configure d (0x40 + (case mod 16)));
          ignore (Fdc_driver.recalibrate d ~drive:(case mod 2));
          ignore (Fdc_driver.sense_interrupt d);
          ignore (Fdc_driver.read_id d ~drive:(case mod 2));
          (* Drivers commonly probe the controller version at init. *)
          ignore (Fdc_driver.version d);
          for i = 0 to 5 do
            let track = ((case * 7) + (i * 3)) mod 80 in
            seek_read_write d ~track ~head:(i mod 2) ~sect:(1 + (i mod 9))
          done;
          ignore (Fdc_driver.msr d))
    }

  let rare_op rng d =
    match Prng.int rng 3 with
    | 0 -> ignore (Fdc_driver.dumpreg d)
    | 1 -> ignore (Fdc_driver.perpendicular d (Prng.int rng 256))
    | _ -> ignore (Fdc_driver.invalid_command d)

  let soak_case ~mode ~rng ~rare_prob ~ops m =
    let d = Fdc_driver.create m in
    ignore (Fdc_driver.reset d);
    ignore (Fdc_driver.recalibrate d ~drive:0);
    ignore (Fdc_driver.sense_interrupt d);
    let actions =
      [|
        (fun () ->
          let track = Prng.int rng 80 and head = Prng.int rng 2 in
          ignore (Fdc_driver.seek d ~drive:0 ~head ~track);
          ignore (Fdc_driver.sense_interrupt d);
          ignore
            (Fdc_driver.read_sector d ~drive:0 ~head ~track
               ~sect:(1 + Prng.int rng 18)));
        (fun () ->
          let track = Prng.int rng 80 and head = Prng.int rng 2 in
          let data = Bytes.make 512 (Char.chr (Prng.int rng 256)) in
          ignore (Fdc_driver.seek d ~drive:0 ~head ~track);
          ignore (Fdc_driver.sense_interrupt d);
          ignore
            (Fdc_driver.write_sector d ~drive:0 ~head ~track
               ~sect:(1 + Prng.int rng 18) data));
        (fun () -> ignore (Fdc_driver.read_id d ~drive:0));
        (fun () -> ignore (Fdc_driver.msr d));
        (fun () ->
          ignore (Fdc_driver.specify d ~srt:(Prng.int rng 256) ~hut:(Prng.int rng 16)));
      |]
    in
    for k = 0 to ops - 1 do
      if Prng.chance rng rare_prob then rare_op rng d
      else (pick_op ~mode ~rng k actions) ()
    done

  let ops_per_hour = function
    | Sequential -> 3000
    | Random -> 2600
    | Random_delay -> 1500
end

module Ehci_w = struct
  let device_name = Devices.Ehci.name
  let paper_version = Devices.Qemu_version.v 5 1 0

  let make_machine ?vmexit_cost version =
    make_machine_for (fun version -> Devices.Ehci.device ~version) ?vmexit_cost
      version

  let trainer ~cases =
    {
      Sedspec.Pipeline.cases;
      run_case =
        (fun m case ->
          let d = Ehci_driver.create m in
          ignore (Ehci_driver.reset_port d);
          ignore (Ehci_driver.set_address d (1 + (case mod 16)));
          ignore (Ehci_driver.get_descriptor d ~dtype:1 ~length:18);
          ignore (Ehci_driver.get_descriptor d ~dtype:1 ~length:8);
          ignore (Ehci_driver.get_descriptor d ~dtype:2 ~length:32);
          ignore (Ehci_driver.get_descriptor d ~dtype:2 ~length:9);
          ignore (Ehci_driver.get_descriptor d ~dtype:3 ~length:16);
          ignore (Ehci_driver.set_configuration d 1);
          ignore (Ehci_driver.get_status d);
          ignore (Ehci_driver.control_out d (Bytes.make (8 + (case mod 56)) 'x'));
          ignore (Ehci_driver.usbsts d);
          ignore (Ehci_driver.frindex d))
    }

  let rare_op rng d =
    (* CLEAR_FEATURE is a legitimate request no training sample issued. *)
    ignore
      (Ehci_driver.control_setup d ~bm:0x00 ~req:1 ~value:(Prng.int rng 2)
         ~index:0 ~length:0);
    ignore (Ehci_driver.submit d ~pid:Devices.Ehci.pid_in ~len:0 ~buf:0x6000L)

  let soak_case ~mode ~rng ~rare_prob ~ops m =
    let d = Ehci_driver.create m in
    ignore (Ehci_driver.reset_port d);
    ignore (Ehci_driver.set_address d (1 + Prng.int rng 100));
    let actions =
      [|
        (fun () -> ignore (Ehci_driver.get_descriptor d ~dtype:1 ~length:(8 + Prng.int rng 11)));
        (fun () -> ignore (Ehci_driver.get_descriptor d ~dtype:2 ~length:(4 + Prng.int rng 29)));
        (fun () -> ignore (Ehci_driver.get_descriptor d ~dtype:3 ~length:(2 + Prng.int rng 15)));
        (fun () -> ignore (Ehci_driver.set_configuration d (Prng.int rng 3)));
        (fun () -> ignore (Ehci_driver.get_status d));
        (fun () -> ignore (Ehci_driver.control_out d (Bytes.make (1 + Prng.int rng 64) 'y')));
        (fun () -> ignore (Ehci_driver.usbsts d));
      |]
    in
    for k = 0 to ops - 1 do
      if Prng.chance rng rare_prob then rare_op rng d
      else (pick_op ~mode ~rng k actions) ()
    done

  let ops_per_hour = function
    | Sequential -> 8000
    | Random -> 7000
    | Random_delay -> 4000
end

module Pcnet_w = struct
  let device_name = Devices.Pcnet.name
  let paper_version = Devices.Qemu_version.v 2 4 0

  let make_machine ?vmexit_cost version =
    make_machine_for (fun version -> Devices.Pcnet.device ~version) ?vmexit_cost
      version

  let frame rng len = Prng.bytes rng len

  let trainer ~cases =
    {
      Sedspec.Pipeline.cases;
      run_case =
        (fun m case ->
          let rng = Prng.create (Int64.of_int (7919 * (case + 1))) in
          let d = Pcnet_driver.create ~rcvrl:(4 + (case mod 5)) ~xmtrl:8 m in
          ignore (Pcnet_driver.reset d);
          (* Deliver one frame before RX is enabled: trains the drop path. *)
          ignore (Pcnet_driver.receive d (frame rng 64));
          let loopback = case mod 3 = 0 in
          ignore (Pcnet_driver.init d ~mode:(if loopback then 4 else 0) ());
          ignore (Pcnet_driver.start d);
          ignore (Pcnet_driver.link_up d);
          for i = 0 to 5 do
            let len = 64 + ((case * 97 + i * 211) mod 1454) in
            if i mod 3 = 2 then
              (* Multi-fragment frame (trains the ENP-not-set edge). *)
              ignore
                (Pcnet_driver.transmit d [ frame rng (len / 2); frame rng (len / 2) ])
            else ignore (Pcnet_driver.transmit d [ frame rng len ]);
            if not loopback then begin
              ignore (Pcnet_driver.receive d (frame rng (64 + ((i * 331) mod 1454))));
              ignore (Pcnet_driver.rx_frame d)
            end;
            Pcnet_driver.ack_interrupts d
          done;
          (* Exhaust the RX ring once: trains the ring-wrap / miss edges. *)
          if not loopback then begin
            for _ = 0 to 12 do
              ignore (Pcnet_driver.receive d (frame rng 128))
            done;
            Pcnet_driver.stock_rx_ring d
          end;
          ignore (Pcnet_driver.csr0 d))
    }

  let rare_op rng d =
    match Prng.int rng 2 with
    | 0 -> ignore (Pcnet_driver.read_csr d 88)  (* chip id probe *)
    | _ -> ignore (Pcnet_driver.read_bcr d 20)

  let soak_case ~mode ~rng ~rare_prob ~ops m =
    let d = Pcnet_driver.create ~rcvrl:8 ~xmtrl:8 m in
    ignore (Pcnet_driver.reset d);
    ignore (Pcnet_driver.init d ~mode:0 ());
    ignore (Pcnet_driver.start d);
    let actions =
      [|
        (fun () ->
          ignore (Pcnet_driver.transmit d [ frame rng (64 + Prng.int rng 1454) ]));
        (fun () ->
          let l = 64 + Prng.int rng 1200 in
          ignore (Pcnet_driver.transmit d [ frame rng (l / 2); frame rng (l / 2) ]));
        (fun () ->
          ignore (Pcnet_driver.receive d (frame rng (64 + Prng.int rng 1454)));
          ignore (Pcnet_driver.rx_frame d));
        (fun () -> ignore (Pcnet_driver.csr0 d));
        (fun () -> ignore (Pcnet_driver.link_up d));
        (fun () -> Pcnet_driver.ack_interrupts d);
      |]
    in
    for k = 0 to ops - 1 do
      if Prng.chance rng rare_prob then rare_op rng d
      else (pick_op ~mode ~rng k actions) ()
    done

  let ops_per_hour = function
    | Sequential -> 20000
    | Random -> 18000
    | Random_delay -> 9000
end

module Sdhci_w = struct
  let device_name = Devices.Sdhci.name
  let paper_version = Devices.Qemu_version.v 5 2 0

  let make_machine ?vmexit_cost version =
    make_machine_for (fun version -> Devices.Sdhci.device ~version) ?vmexit_cost
      version

  let dma_area = 0xA0000L

  let trainer ~cases =
    {
      Sedspec.Pipeline.cases;
      run_case =
        (fun m case ->
          let d = Sdhci_driver.create m in
          ignore (Sdhci_driver.init_card d);
          let blksize = [| 512; 1024; 2048 |].(case mod 3) in
          ignore (Sdhci_driver.read_block d ~lba:(case * 3) ~blksize);
          let data = Bytes.make blksize (Char.chr (case land 0xFF)) in
          ignore (Sdhci_driver.write_block d ~lba:(case * 5) data);
          ignore
            (Sdhci_driver.read_multi d ~lba:case ~blksize ~blkcnt:(1 + (case mod 6))
               ~dma_addr:dma_area);
          ignore
            (Sdhci_driver.write_multi d ~lba:(case + 7) ~blksize
               ~blkcnt:(1 + (case mod 4)) ~dma_addr:dma_area);
          ignore (Sdhci_driver.send_status d);
          ignore (Sdhci_driver.stop d);
          ignore (Sdhci_driver.clear_ints d);
          ignore (Sdhci_driver.norintsts d))
    }

  let rare_op _rng d =
    (* CMD1 (legacy MMC init) is legitimate but untrained. *)
    ignore (Sdhci_driver.raw_command d ~idx:1 ~arg:0)

  let soak_case ~mode ~rng ~rare_prob ~ops m =
    let d = Sdhci_driver.create m in
    ignore (Sdhci_driver.init_card d);
    let actions =
      [|
        (fun () ->
          let blksize = [| 512; 1024; 2048 |].(Prng.int rng 3) in
          ignore (Sdhci_driver.read_block d ~lba:(Prng.int rng 4096) ~blksize));
        (fun () ->
          let blksize = [| 512; 1024 |].(Prng.int rng 2) in
          ignore
            (Sdhci_driver.write_block d ~lba:(Prng.int rng 4096)
               (Bytes.make blksize (Char.chr (Prng.int rng 256)))));
        (fun () ->
          ignore
            (Sdhci_driver.read_multi d ~lba:(Prng.int rng 4096)
               ~blksize:[| 512; 2048 |].(Prng.int rng 2)
               ~blkcnt:(1 + Prng.int rng 7) ~dma_addr:dma_area));
        (fun () ->
          ignore
            (Sdhci_driver.write_multi d ~lba:(Prng.int rng 4096) ~blksize:512
               ~blkcnt:(1 + Prng.int rng 7) ~dma_addr:dma_area));
        (fun () -> ignore (Sdhci_driver.send_status d));
        (fun () -> ignore (Sdhci_driver.clear_ints d));
      |]
    in
    for k = 0 to ops - 1 do
      if Prng.chance rng rare_prob then rare_op rng d
      else (pick_op ~mode ~rng k actions) ()
    done

  let ops_per_hour = function
    | Sequential -> 6000
    | Random -> 5200
    | Random_delay -> 2800
end

module Scsi_w = struct
  let device_name = Devices.Scsi.name
  let paper_version = Devices.Qemu_version.v 2 4 0

  let make_machine ?vmexit_cost version =
    make_machine_for (fun version -> Devices.Scsi.device ~version) ?vmexit_cost
      version

  let trainer ~cases =
    {
      Sedspec.Pipeline.cases;
      run_case =
        (fun m case ->
          let d = Scsi_driver.create m in
          ignore (Scsi_driver.reset d);
          ignore (Scsi_driver.test_unit_ready d);
          ignore (Scsi_driver.inquiry d ~dma:(case mod 2 = 0));
          ignore (Scsi_driver.request_sense d);
          ignore (Scsi_driver.mode_sense d ~pages:(18 + (case mod 3)));
          for i = 0 to 3 do
            ignore (Scsi_driver.read10 d ~lba:((case * 11) + i) ~blocks:(1 + (i mod 2)));
            ignore (Scsi_driver.write10 d ~lba:((case * 13) + i) ~blocks:1)
          done;
          (* Transfers larger than the DMA engine's page chunk. *)
          ignore (Scsi_driver.read10 d ~lba:(case * 17) ~blocks:12);
          ignore (Scsi_driver.write10 d ~lba:(case * 19) ~blocks:10);
          ignore (Scsi_driver.read_intr d))
    }

  let rare_op rng d =
    match Prng.int rng 2 with
    | 0 -> ignore (Scsi_driver.bus_reset d)
    | _ -> ignore (Scsi_driver.nop d)

  let soak_case ~mode ~rng ~rare_prob ~ops m =
    let d = Scsi_driver.create m in
    ignore (Scsi_driver.reset d);
    let actions =
      [|
        (fun () -> ignore (Scsi_driver.test_unit_ready d));
        (fun () -> ignore (Scsi_driver.inquiry d ~dma:(Prng.bool rng)));
        (fun () ->
          ignore (Scsi_driver.read10 d ~lba:(Prng.int rng 65536) ~blocks:(1 + Prng.int rng 3)));
        (fun () ->
          ignore (Scsi_driver.write10 d ~lba:(Prng.int rng 65536) ~blocks:(1 + Prng.int rng 2)));
        (fun () -> ignore (Scsi_driver.request_sense d));
        (fun () -> ignore (Scsi_driver.read_intr d));
      |]
    in
    for k = 0 to ops - 1 do
      if Prng.chance rng rare_prob then rare_op rng d
      else (pick_op ~mode ~rng k actions) ()
    done

  let ops_per_hour = function
    | Sequential -> 5000
    | Random -> 4400
    | Random_delay -> 2400
end

module Virtio_w = struct
  let device_name = Devices.Virtio_ring.name
  let paper_version = Devices.Qemu_version.v 4 0 0

  let make_machine ?vmexit_cost version =
    make_machine_for
      (fun version -> Devices.Virtio_ring.device ~version)
      ?vmexit_cost version

  let payload rng len = Prng.bytes rng len

  let trainer ~cases =
    {
      Sedspec.Pipeline.cases;
      run_case =
        (fun m case ->
          let rng = Prng.create (Int64.of_int (6947 * (case + 1))) in
          let d = Virtio_driver.create m in
          ignore (Virtio_driver.init d);
          (* Notify with an empty queue: trains the no-work edge. *)
          ignore (Virtio_driver.publish d 0);
          ignore (Virtio_driver.poll_used d);
          for i = 0 to 5 do
            let len = 32 + ((case * 113 + i * 197) mod 480) in
            if i mod 3 = 2 then
              (* Two-descriptor chain (trains the NEXT edge). *)
              ignore
                (Virtio_driver.send d
                   [ payload rng (len / 2); payload rng (len / 2) ])
            else ignore (Virtio_driver.send d [ payload rng len ]);
            ignore (Virtio_driver.poll_used d);
            if i mod 2 = 0 then
              ignore (Virtio_driver.recv d ~len:(16 + ((case * 37 + i) mod 240)));
            ignore (Virtio_driver.poll_used d);
            ignore (Virtio_driver.isr d);
            ignore (Virtio_driver.isr_ack d)
          done;
          ignore (Virtio_driver.status d);
          ignore (Virtio_driver.used_idx_reg d);
          ignore (Virtio_driver.features d);
          ignore (Virtio_driver.qsize_reg d))
    }

  let rare_op _rng d =
    (* Ring-address readback is legitimate but untrained. *)
    ignore (Virtio_driver.avail_addr_reg d)

  let soak_case ~mode ~rng ~rare_prob ~ops m =
    let d = Virtio_driver.create m in
    ignore (Virtio_driver.init d);
    let actions =
      [|
        (fun () ->
          ignore (Virtio_driver.send d [ payload rng (32 + Prng.int rng 480) ]);
          ignore (Virtio_driver.poll_used d));
        (fun () ->
          let l = 64 + Prng.int rng 400 in
          ignore (Virtio_driver.send d [ payload rng (l / 2); payload rng (l / 2) ]);
          ignore (Virtio_driver.poll_used d));
        (fun () ->
          ignore (Virtio_driver.recv d ~len:(16 + Prng.int rng 240));
          ignore (Virtio_driver.poll_used d));
        (fun () -> ignore (Virtio_driver.status d));
        (fun () -> ignore (Virtio_driver.used_idx_reg d));
        (fun () ->
          ignore (Virtio_driver.isr d);
          ignore (Virtio_driver.isr_ack d));
      |]
    in
    for k = 0 to ops - 1 do
      if Prng.chance rng rare_prob then rare_op rng d
      else (pick_op ~mode ~rng k actions) ()
    done

  let ops_per_hour = function
    | Sequential -> 15000
    | Random -> 13000
    | Random_delay -> 7000
end

let all : (module DEVICE_WORKLOAD) list =
  [
    (module Fdc_w);
    (module Ehci_w);
    (module Pcnet_w);
    (module Sdhci_w);
    (module Scsi_w);
    (module Virtio_w);
  ]

let find name =
  List.find
    (fun (module W : DEVICE_WORKLOAD) -> W.device_name = name)
    all

let find_opt name =
  List.find_opt
    (fun (module W : DEVICE_WORKLOAD) -> W.device_name = name)
    all
