(** Benign workload generation (paper §IV-C training samples and §VII-B1
    soak interactions).

    For every device there is a {e trainer} — the legitimate-sample corpus
    SEDSpec builds its execution specification from, varying the
    paper-listed dimensions (storage parameters, network mode/MTU/rings,
    transfer shapes) — and a {e soak case} generator that replays the same
    operation mix under one of the three interaction modes, occasionally
    (with [rare_prob]) issuing a legitimate-but-rare maintenance command
    that training never covered: the paper's false-positive source.

    All randomness is drawn from an explicit PRNG so runs are
    reproducible. *)

type interaction_mode = Sequential | Random | Random_delay

val mode_to_string : interaction_mode -> string

module type DEVICE_WORKLOAD = sig
  val device_name : string

  val paper_version : Devices.Qemu_version.t
  (** The QEMU version the paper's case studies target for this device. *)

  val make_machine : ?vmexit_cost:int -> Devices.Qemu_version.t -> Vmm.Machine.t
  (** Fresh machine with this device attached at the given version. *)

  val trainer : cases:int -> Sedspec.Pipeline.trainer

  val soak_case :
    mode:interaction_mode ->
    rng:Sedspec_util.Prng.t ->
    rare_prob:float ->
    ops:int ->
    Vmm.Machine.t ->
    unit
  (** Run one benign test case of roughly [ops] logical operations. *)

  val ops_per_hour : interaction_mode -> int
  (** Logical operations one simulated hour of this workload performs
      (random-with-delay is slower, as in the paper). *)
end

module Fdc_w : DEVICE_WORKLOAD
module Ehci_w : DEVICE_WORKLOAD
module Pcnet_w : DEVICE_WORKLOAD
module Sdhci_w : DEVICE_WORKLOAD
module Scsi_w : DEVICE_WORKLOAD

val all : (module DEVICE_WORKLOAD) list
(** The five devices in the paper's Table III order. *)

val find : string -> (module DEVICE_WORKLOAD)
(** Lookup by device name; raises [Not_found]. *)

val find_opt : string -> (module DEVICE_WORKLOAD) option
