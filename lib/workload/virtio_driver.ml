type t = {
  m : Vmm.Machine.t;
  qsize : int;
  mutable avail_idx : int;  (** Next avail slot the guest will publish. *)
  mutable used_seen : int;  (** Used entries the guest has reaped. *)
  mutable next_desc : int;  (** Round-robin descriptor allocator. *)
}

(* Guest memory map owned by this driver. *)
let desc_table = 0x30000L
let avail_ring = 0x31000L
let used_ring = 0x32000L
let data_bufs = 0x34000L
let buf_stride = 0x400

let reg off = Int64.add Devices.Virtio_ring.mmio_base (Int64.of_int off)

let create ?(qsize = 8) m =
  { m; qsize; avail_idx = 0; used_seen = 0; next_desc = 0 }

let w t off v = Io.mmio_w32 t.m (reg off) v
let r t off = Io.mmio_r32_v t.m (reg off)

let ram t = Vmm.Machine.ram t.m

let init t =
  t.avail_idx <- 0;
  t.used_seen <- 0;
  t.next_desc <- 0;
  let g = ram t in
  (* Zero the ring headers so a reused machine starts from a clean queue. *)
  Vmm.Guest_mem.write g (Int64.add avail_ring 2L) Devir.Width.W16 0L;
  Vmm.Guest_mem.write g (Int64.add used_ring 2L) Devir.Width.W16 0L;
  Io.ok (w t 0x10 0L) (* device reset *)
  && Io.ok (w t 0x00 (Int64.of_int t.qsize))
  && Io.ok (w t 0x04 desc_table)
  && Io.ok (w t 0x08 avail_ring)
  && Io.ok (w t 0x0C used_ring)
  && Io.ok (w t 0x10 1L) (* ACKNOWLEDGE *)
  && Io.ok (w t 0x10 3L) (* DRIVER *)
  && Io.ok (w t 0x10 7L) (* DRIVER_OK *)

let desc_addr i =
  Int64.add desc_table (Int64.of_int (i * Devices.Virtio_ring.desc_size))

let write_desc t i ~addr ~len ~flags ~next =
  let g = ram t in
  let d = desc_addr i in
  Vmm.Guest_mem.write g d Devir.Width.W32 addr;
  Vmm.Guest_mem.write g (Int64.add d 4L) Devir.Width.W32 (Int64.of_int len);
  Vmm.Guest_mem.write g (Int64.add d 8L) Devir.Width.W16 (Int64.of_int flags);
  Vmm.Guest_mem.write g (Int64.add d 10L) Devir.Width.W16 (Int64.of_int next)

let alloc_desc t =
  let i = t.next_desc in
  t.next_desc <- (t.next_desc + 1) mod t.qsize;
  i

let buf_of i = Int64.add data_bufs (Int64.of_int (i * buf_stride))

let publish t head =
  let g = ram t in
  let slot = t.avail_idx mod t.qsize in
  Vmm.Guest_mem.write g
    (Int64.add avail_ring (Int64.of_int (4 + (slot * 2))))
    Devir.Width.W16 (Int64.of_int head);
  t.avail_idx <- (t.avail_idx + 1) land 0xFFFF;
  Vmm.Guest_mem.write g (Int64.add avail_ring 2L) Devir.Width.W16
    (Int64.of_int t.avail_idx);
  w t 0x20 0L

(* Stage a chain of guest-readable buffers (the device consumes them)
   and notify. *)
let send t frags =
  match frags with
  | [] -> Io.R_ok None
  | _ ->
    let n = List.length frags in
    let idxs = List.map (fun _ -> alloc_desc t) frags in
    let head = List.hd idxs in
    List.iteri
      (fun k (i, frag) ->
        let buf = buf_of i in
        Vmm.Guest_mem.blit_in (ram t) buf frag;
        let flags =
          if k = n - 1 then 0 else Devices.Virtio_ring.f_next
        in
        let next = if k = n - 1 then 0 else List.nth idxs (k + 1) in
        write_desc t i ~addr:buf ~len:(Bytes.length frag) ~flags ~next)
      (List.combine idxs frags);
    publish t head

(* Stage one device-writable buffer of [len] bytes and notify; on success
   the device has served its pattern into it. *)
let recv t ~len =
  let i = alloc_desc t in
  let buf = buf_of i in
  write_desc t i ~addr:buf ~len ~flags:Devices.Virtio_ring.f_write ~next:0;
  match publish t i with
  | Io.R_ok _ -> Some (Vmm.Guest_mem.blit_out (ram t) buf len)
  | _ -> None

(* Reap one used-ring entry: [(id, len)] as the device published it. *)
let poll_used t =
  let g = ram t in
  let used_idx =
    Int64.to_int (Vmm.Guest_mem.read g (Int64.add used_ring 2L) Devir.Width.W16)
  in
  if used_idx = t.used_seen then None
  else begin
    let slot = t.used_seen mod t.qsize in
    let e = Int64.add used_ring (Int64.of_int (4 + (slot * 8))) in
    let id = Int64.to_int (Vmm.Guest_mem.read g e Devir.Width.W32) in
    let len =
      Int64.to_int (Vmm.Guest_mem.read g (Int64.add e 4L) Devir.Width.W32)
    in
    t.used_seen <- (t.used_seen + 1) land 0xFFFF;
    Some (id, len)
  end

let isr t = Int64.to_int (r t 0x14) land 0xFFFF
let isr_ack t = w t 0x14 0xFFFFL
let status t = Int64.to_int (r t 0x10) land 0xFF
let used_idx_reg t = Int64.to_int (r t 0x18) land 0xFFFF
let features t = r t 0x1C
let qsize_reg t = Int64.to_int (r t 0x00) land 0xFFFF
let avail_addr_reg t = r t 0x08
