(** Guest-side driver for the virtio-style ring device.

    Owns a split virtqueue in guest memory (descriptor table, avail ring,
    used ring, data buffers), publishes descriptor chains through the
    avail ring and reaps completions from the used ring — the benign
    traffic the response-direction validator trains over. *)

type t

val desc_table : int64
val avail_ring : int64
val used_ring : int64
val data_bufs : int64
val buf_stride : int

val create : ?qsize:int -> Vmm.Machine.t -> t
(** Default queue size 8 (must be a power of two). *)

val init : t -> bool
(** Program queue size, ring addresses and the status handshake. *)

val write_desc :
  t -> int -> addr:int64 -> len:int -> flags:int -> next:int -> unit
(** Raw descriptor-table write (exploits stage hostile chains with it). *)

val publish : t -> int -> Io.result
(** Append a head index to the avail ring, bump its index and notify. *)

val send : t -> Bytes.t list -> Io.result
(** Stage a chain of guest-readable buffers and notify. *)

val recv : t -> len:int -> Bytes.t option
(** Stage one device-writable buffer and notify; returns the served
    bytes. *)

val poll_used : t -> (int * int) option
(** Reap one used-ring entry as [(id, len)]. *)

val isr : t -> int
val isr_ack : t -> Io.result
val status : t -> int
val used_idx_reg : t -> int
val features : t -> int64
val qsize_reg : t -> int

val avail_addr_reg : t -> int64
(** Avail-ring address readback — a legitimate probe the benign trainer
    deliberately never issues (enhancement-mode headroom). *)
