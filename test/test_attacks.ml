(* Tests for the CVE proof-of-concept catalogue: every exploit has a
   concrete effect against its vulnerable QEMU version and none against the
   first fixed version (except the 1568 analog, whose vulnerable effect is
   semantic). *)

module QV = Devices.Qemu_version

let machine_for (attack : Attacks.Attack.t) version =
  let w = Workload.Samples.find attack.device in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  W.make_machine version

let effects_for (attack : Attacks.Attack.t) version =
  let m = machine_for attack version in
  attack.setup m;
  Attacks.Attack.observe_effects m ~device:attack.device
    (fun () -> try attack.run m with Exit -> ())
    attack

let test_version_pairs_are_ordered () =
  (* The catalogue's own version pair: vulnerable strictly before fixed,
     and the pair is what the deviation locator enumerates. *)
  List.iter
    (fun (a : Attacks.Attack.t) ->
      let vuln, patched = Attacks.Attack.version_pair a in
      Alcotest.(check int) (a.cve ^ " pair = (qemu_version, fixed_in)") 0
        (QV.compare vuln a.qemu_version + QV.compare patched a.fixed_in);
      Alcotest.(check bool)
        (a.cve ^ " vulnerable < fixed")
        true
        QV.(vuln < patched))
    Attacks.Attack.all

(* CVEs whose fixed-version run is still "noisy" because a *different* CVE
   remains open at that version on the same device (pcnet 7504/7512 share a
   fix; scsi 5158's fix predates 4439's). *)
let isolated_effect (attack : Attacks.Attack.t) (e : Attacks.Attack.effects) =
  match attack.cve with
  | "CVE-2016-1568" -> List.mem "double-completion" e.extra
  | "CVE-2015-5158" ->
    (* Its own signature is trap-free corruption followed by the defensive
       branch; at 2.4.1 the stream is refused at parse. *)
    e.oob_writes > 4 (* more than 4439's residual 4-byte spill *)
  | _ -> Attacks.Attack.succeeded e

let test_catalogue_is_complete () =
  Alcotest.(check int)
    "eight case studies + one miss + virtio analog + two grown" 12
    (List.length Attacks.Attack.all);
  List.iter
    (fun (a : Attacks.Attack.t) ->
      Alcotest.(check bool) (a.cve ^ " has description") true (a.description <> ""))
    Attacks.Attack.all

let test_exploits_succeed_on_vulnerable () =
  List.iter
    (fun (a : Attacks.Attack.t) ->
      let e = effects_for a a.qemu_version in
      if not (isolated_effect a e) then
        Alcotest.failf "%s had no effect on QEMU %s: %s" a.cve
          (QV.to_string a.qemu_version)
          (Format.asprintf "%a" Attacks.Attack.pp_effects e))
    Attacks.Attack.all

let test_exploits_fail_on_patched () =
  List.iter
    (fun (a : Attacks.Attack.t) ->
      let e = effects_for a a.fixed_in in
      if isolated_effect a e then
        Alcotest.failf "%s still effective on patched: %s" a.cve
          (Format.asprintf "%a" Attacks.Attack.pp_effects e))
    Attacks.Attack.all

(* --- Protected replay across the version pair --------------------------- *)

(* The paper's end-to-end claim, asserted for every engine × mode
   combination: replaying a CVE's exploit stream on a checker-protected
   machine at the vulnerable version detects the exploit (and halts the
   VM whenever the mode escalates the anomaly), while the same stream
   against the patched model causes no exploit effect.  Case-study
   replays cover the per-strategy detection matrix at the vulnerable
   version only; this pins both sides of the version pair. *)

let engine_mode_combos =
  [
    (Sedspec.Checker.Compiled, "compiled");
    (Sedspec.Checker.Interpreted, "interp");
  ]
  |> List.concat_map (fun (engine, ename) ->
         List.map
           (fun (mode, mname) -> (engine, mode, ename ^ "/" ^ mname))
           [
             (Sedspec.Checker.Protection, "protection");
             (Sedspec.Checker.Enhancement, "enhancement");
           ])

let protected_replay (a : Attacks.Attack.t) ~engine ~mode version =
  let w = Workload.Samples.find a.device in
  let config =
    { Sedspec.Checker.default_config with Sedspec.Checker.engine; mode }
  in
  let m, checker = Metrics.Spec_cache.fresh_protected_machine ~config w version in
  a.setup m;
  let setup_anoms = Sedspec.Checker.drain_anomalies checker in
  let effects =
    Attacks.Attack.observe_effects m ~device:a.device
      (fun () -> try a.run m with _ -> ())
      a
  in
  (setup_anoms, Sedspec.Checker.drain_anomalies checker, Vmm.Machine.halted m, effects)

let test_protected_vulnerable_halts () =
  List.iter
    (fun (a : Attacks.Attack.t) ->
      List.iter
        (fun (engine, mode, cname) ->
          let tag = Printf.sprintf "%s %s vulnerable" a.cve cname in
          let setup_anoms, anoms, halted, _ =
            protected_replay a ~engine ~mode a.qemu_version
          in
          Alcotest.(check int) (tag ^ " setup clean") 0 (List.length setup_anoms);
          if a.detectable then begin
            Alcotest.(check bool) (tag ^ " detected") true (anoms <> []);
            (* Protection halts on any anomaly; enhancement escalates only
               the parameter check (paper §V-C). *)
            let expect_halt =
              match mode with
              | Sedspec.Checker.Protection -> true
              | Sedspec.Checker.Enhancement ->
                List.mem Sedspec.Checker.Parameter_check a.expected
            in
            if expect_halt then
              Alcotest.(check bool) (tag ^ " halted") true halted
          end
          else begin
            (* CVE-2016-1568: the acknowledged miss stays invisible in
               every configuration. *)
            Alcotest.(check int) (tag ^ " miss undetected") 0 (List.length anoms);
            Alcotest.(check bool) (tag ^ " miss unhalted") false halted
          end)
        engine_mode_combos)
    Attacks.Attack.all

let test_protected_patched_is_clean () =
  List.iter
    (fun (a : Attacks.Attack.t) ->
      List.iter
        (fun (engine, mode, cname) ->
          let tag = Printf.sprintf "%s %s patched" a.cve cname in
          let setup_anoms, _, _, effects =
            protected_replay a ~engine ~mode a.fixed_in
          in
          Alcotest.(check int) (tag ^ " setup clean") 0 (List.length setup_anoms);
          if isolated_effect a effects then
            Alcotest.failf "%s: exploit still effective: %s" tag
              (Format.asprintf "%a" Attacks.Attack.pp_effects effects))
        engine_mode_combos)
    Attacks.Attack.all

let test_expected_matrix_matches_paper () =
  (* The paper's Table III: which strategies mark each CVE. *)
  let expect cve strategies =
    let a = Attacks.Attack.find cve in
    Alcotest.(check (list string)) cve
      (List.map Sedspec.Checker.strategy_to_string strategies)
      (List.map Sedspec.Checker.strategy_to_string a.expected)
  in
  let p = Sedspec.Checker.Parameter_check
  and i = Sedspec.Checker.Indirect_jump_check
  and c = Sedspec.Checker.Conditional_jump_check in
  expect "CVE-2015-3456" [ p; c ];
  expect "CVE-2020-14364" [ p; i ];
  expect "CVE-2015-7504" [ i ];
  expect "CVE-2015-7512" [ p; i ];
  expect "CVE-2016-7909" [ c ];
  expect "CVE-2021-3409" [ p ];
  expect "CVE-2015-5158" [ c ];
  expect "CVE-2016-4439" [ c ];
  expect "CVE-2016-1568" [];
  expect "CVE-2019-14835" [ p ];
  (* The locator-grown regressions: the sdhci stream halts at the first
     out-of-envelope arithmetic; the pcnet stream additionally lands a
     wild indirect jump once the overrun clobbers the irq pointer. *)
  expect "GROWN-2021-3409" [ p ];
  expect "GROWN-2015-7512" [ p; i ]

let test_miss_is_marked_undetectable () =
  let a = Attacks.Attack.find "CVE-2016-1568" in
  Alcotest.(check bool) "not detectable" false a.detectable;
  List.iter
    (fun (a : Attacks.Attack.t) ->
      if a.cve <> "CVE-2016-1568" then
        Alcotest.(check bool) (a.cve ^ " detectable") true a.detectable)
    Attacks.Attack.all

let test_setup_streams_are_benign () =
  (* Attack setups must not corrupt anything by themselves. *)
  List.iter
    (fun (a : Attacks.Attack.t) ->
      let m = machine_for a a.qemu_version in
      let e =
        Attacks.Attack.observe_effects m ~device:a.device (fun () -> a.setup m) a
      in
      Alcotest.(check int) (a.cve ^ " setup oob-free") 0 e.oob_writes;
      Alcotest.(check int) (a.cve ^ " setup trap-free") 0 (List.length e.traps))
    Attacks.Attack.all

let test_effects_pp_and_succeeded () =
  let empty =
    { Attacks.Attack.oob_writes = 0; oob_reads = 0; traps = []; extra = [] }
  in
  Alcotest.(check bool) "no effect" false (Attacks.Attack.succeeded empty);
  Alcotest.(check bool) "oob counts" true
    (Attacks.Attack.succeeded { empty with oob_writes = 1 });
  Alcotest.(check bool) "extra counts" true
    (Attacks.Attack.succeeded { empty with extra = [ "double-completion" ] });
  Alcotest.(check bool) "prints" true
    (String.length (Format.asprintf "%a" Attacks.Attack.pp_effects empty) > 0)

let test_find_unknown_raises () =
  Alcotest.(check bool) "not found" true
    (match Attacks.Attack.find "CVE-0000-0000" with
    | _ -> false
    | exception Not_found -> true)

let () =
  Alcotest.run "attacks"
    [
      ( "catalogue",
        [
          Alcotest.test_case "complete" `Quick test_catalogue_is_complete;
          Alcotest.test_case "expected matrix matches paper" `Quick
            test_expected_matrix_matches_paper;
          Alcotest.test_case "miss marked undetectable" `Quick
            test_miss_is_marked_undetectable;
        ] );
      ( "ground truth",
        [
          Alcotest.test_case "exploits succeed on vulnerable versions" `Quick
            test_exploits_succeed_on_vulnerable;
          Alcotest.test_case "exploits fail on patched versions" `Quick
            test_exploits_fail_on_patched;
          Alcotest.test_case "setup streams are benign" `Quick
            test_setup_streams_are_benign;
          Alcotest.test_case "version pairs are ordered" `Quick
            test_version_pairs_are_ordered;
        ] );
      ( "protected replay",
        [
          Alcotest.test_case "vulnerable side detected and halted" `Quick
            test_protected_vulnerable_halts;
          Alcotest.test_case "patched side runs clean" `Quick
            test_protected_patched_is_clean;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "effects classification" `Quick
            test_effects_pp_and_succeeded;
          Alcotest.test_case "unknown cve raises" `Quick test_find_unknown_raises;
        ] );
    ]
