(* Differential test for the compiled ES-Checker: the closure-compiled
   walk (Compile.lower + Checker's compiled driver) must be bit-for-bit
   equivalent to the reference interpreted walk — same verdicts, same
   anomalies (strategy, location, detail, pre/post flag), same statistics,
   same shadow-arena bytes — across all five device workloads and the
   full attacks corpus, in both working modes. *)

module C = Sedspec.Checker

let anomaly_repr (a : C.anomaly) =
  Printf.sprintf "%s|%s|%b|%s"
    (C.strategy_to_string a.strategy)
    (match a.at with
    | Some b -> Devir.Program.bref_to_string b
    | None -> "-")
    a.pre_execution a.detail

let stats_repr (s : C.stats) =
  Printf.sprintf "interactions=%d walks_ok=%d bails=%d deferred=%d nodes_walked=%d"
    s.interactions s.walks_ok s.bails s.deferred s.nodes_walked

let shadow_repr checker =
  let b = C.shadow_snapshot checker in
  let h = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string h (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents h

let mode_name = function
  | C.Protection -> "protection"
  | C.Enhancement -> "enhancement"

(* --- Workload soak ----------------------------------------------------- *)

(* One soak transcript: everything observable about the checker after each
   benign case (with occasional rare commands so anomaly paths and the
   resync machinery are exercised too). *)
let soak_transcript device mode engine =
  let w = Workload.Samples.find device in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let config = { C.default_config with C.mode; engine } in
  let m, checker =
    Metrics.Spec_cache.fresh_protected_machine ~config w W.paper_version
  in
  let rng = Sedspec_util.Prng.create 0xC0FFEEL in
  let modes =
    [| Workload.Samples.Sequential; Workload.Samples.Random;
       Workload.Samples.Random_delay |]
  in
  let out = ref [] in
  let push s = out := s :: !out in
  for case = 0 to 5 do
    let mode = modes.(case mod Array.length modes) in
    W.soak_case ~mode ~rng ~rare_prob:0.002 ~ops:20 m;
    List.iter (fun a -> push (anomaly_repr a)) (C.drain_anomalies checker);
    List.iter (fun wmsg -> push ("warn:" ^ wmsg)) (Vmm.Machine.warnings m);
    Vmm.Machine.clear_warnings m;
    if Vmm.Machine.halted m then begin
      push (Printf.sprintf "halted after case %d" case);
      Vmm.Machine.resume m;
      C.resync checker
    end
  done;
  push (stats_repr (C.stats checker));
  push ("shadow:" ^ shadow_repr checker);
  List.rev !out

let test_workloads_differential mode () =
  List.iter
    (fun w ->
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let device = W.device_name in
      let reference = soak_transcript device mode C.Interpreted in
      let compiled = soak_transcript device mode C.Compiled in
      Alcotest.(check (list string))
        (Printf.sprintf "%s soak (%s mode)" device (mode_name mode))
        reference compiled)
    Workload.Samples.all

(* --- Attacks corpus ---------------------------------------------------- *)

let run_stream m (attack : Attacks.Attack.t) =
  try attack.run m with Exit -> ()

let attack_transcript (attack : Attacks.Attack.t) mode engine =
  let w = Workload.Samples.find attack.device in
  let config = { C.default_config with C.mode; engine } in
  let m, checker =
    Metrics.Spec_cache.fresh_protected_machine ~config w attack.qemu_version
  in
  attack.setup m;
  let setup_anoms = List.map anomaly_repr (C.drain_anomalies checker) in
  run_stream m attack;
  let attack_anoms = List.map anomaly_repr (C.drain_anomalies checker) in
  setup_anoms
  @ ("--attack--" :: attack_anoms)
  @ List.map (fun wmsg -> "warn:" ^ wmsg) (Vmm.Machine.warnings m)
  @ [
      Printf.sprintf "halted=%b" (Vmm.Machine.halted m);
      stats_repr (C.stats checker);
      "shadow:" ^ shadow_repr checker;
    ]

let test_attacks_differential mode () =
  List.iter
    (fun (attack : Attacks.Attack.t) ->
      let reference = attack_transcript attack mode C.Interpreted in
      let compiled = attack_transcript attack mode C.Compiled in
      Alcotest.(check (list string))
        (Printf.sprintf "%s (%s mode)" attack.cve (mode_name mode))
        reference compiled)
    Attacks.Attack.all

(* --- Compiled-form sanity ---------------------------------------------- *)

(* The lowering itself: dense ids are consistent, every observed command
   has a bitset, and compiled walks actually visit nodes. *)
let test_lowering_shape () =
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let built = Metrics.Spec_cache.built w W.paper_version in
  let c = Sedspec.Compile.lower built.spec in
  let n = Array.length c.Sedspec.Compile.nodes in
  Alcotest.(check int) "node count matches spec" (Sedspec.Es_cfg.node_count built.spec) n;
  Array.iteri
    (fun i cn -> Alcotest.(check int) "dense id" i cn.Sedspec.Compile.id)
    c.Sedspec.Compile.nodes;
  Alcotest.(check int) "one bitset per command"
    (List.length (Sedspec.Es_cfg.commands built.spec))
    (Array.length c.Sedspec.Compile.cmd_bits);
  Alcotest.(check bool) "some no-cmd-accessible node" true
    (Array.exists
       (fun cn -> Sedspec.Compile.bit c.Sedspec.Compile.no_cmd_bits cn.Sedspec.Compile.id)
       c.Sedspec.Compile.nodes)

let test_bench_walk_counts_nodes () =
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m, checker = Metrics.Spec_cache.fresh_protected_machine w W.paper_version in
  ignore (m : Vmm.Machine.t);
  let before = (C.stats checker).C.nodes_walked in
  C.bench_walk checker ~handler:"read"
    ~params:
      [ ("addr", 0x3F4L); ("offset", 4L); ("size", 1L); ("data", 0L) ];
  let after = (C.stats checker).C.nodes_walked in
  Alcotest.(check bool) "walked at least one node" true (after > before)

(* Allocation-regression guard for the compiled steady-state walk.  The
   arena/cursor split makes the walk driver itself allocation-free; what
   remains per walk is a fixed overhead (Int64 boxing inside compiled
   expression closures — flambda would erase it — plus walk setup).
   That residue is ~45 words on the reference toolchain; the budget sits
   ~4x above it so GC accounting noise can never trip the test, while a
   reintroduced per-node allocation (a boxed option from a hashtable
   probe, a closure built mid-walk, a fresh tuple per node — each worth
   hundreds of words over a ~100-node walk) blows straight through. *)
let walk_word_budget = 200.0

let test_walk_allocation_budget () =
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m, checker = Metrics.Spec_cache.fresh_protected_machine w W.paper_version in
  ignore (m : Vmm.Machine.t);
  let params = [ ("addr", 0x3F4L); ("offset", 4L); ("size", 1L); ("data", 0L) ] in
  let walk () = C.bench_walk checker ~handler:"read" ~params in
  (* Warm: lazy lowering, cursor growth, hashtable resizes. *)
  for _ = 1 to 32 do
    walk ()
  done;
  let rounds = 1000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to rounds do
    walk ()
  done;
  let per_walk = (Gc.minor_words () -. w0) /. float_of_int rounds in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f minor words/walk within budget %.0f" per_walk
       walk_word_budget)
    true
    (per_walk < walk_word_budget)

let () =
  Alcotest.run "compile"
    [
      ( "differential",
        [
          Alcotest.test_case "workloads (protection)" `Slow
            (test_workloads_differential C.Protection);
          Alcotest.test_case "workloads (enhancement)" `Slow
            (test_workloads_differential C.Enhancement);
          Alcotest.test_case "attacks (protection)" `Slow
            (test_attacks_differential C.Protection);
          Alcotest.test_case "attacks (enhancement)" `Slow
            (test_attacks_differential C.Enhancement);
        ] );
      ( "lowering",
        [
          Alcotest.test_case "shape" `Quick test_lowering_shape;
          Alcotest.test_case "bench_walk" `Quick test_bench_walk_counts_nodes;
          Alcotest.test_case "steady-state walk allocation budget" `Quick
            test_walk_allocation_budget;
        ] );
    ]
