(* Cursor isolation over a shared immutable arena: the tentpole's
   correctness contract.  Any number of checkers (cursors) may walk one
   compiled arena from any mix of domains; each cursor's observable
   behaviour — anomalies, statistics, shadow bytes — must be exactly
   what it would be running alone, and lifecycle operations on one
   cursor (reset, heal) must never perturb a sibling. *)

module Checker = Sedspec.Checker
module W = Workload.Samples
module Runner = Sedspec_util.Runner

let () = Metrics.Spec_cache.training_cases := 12

(* One shared context per device: the cached arena plus a benign request
   stream recorded off an unprotected machine (fdc replays are
   state-faithful without a live device, so the stream stays
   anomaly-free — same property the fleet scale harness relies on). *)
type ctx = {
  x_arena : Sedspec.Compile.t;
  x_spec : Sedspec.Es_cfg.t;
  x_device_arena : Devir.Arena.t;
  x_guest : Interp.guest;
  x_reqs : Vmm.Machine.request array;
}

let make_ctx device =
  let w = W.find device in
  let module D = (val w : W.DEVICE_WORKLOAD) in
  let b = Metrics.Spec_cache.built w D.paper_version in
  let m = D.make_machine D.paper_version in
  let reqs = ref [] in
  Vmm.Machine.set_interposer m D.device_name
    {
      before =
        (fun r ->
          reqs := r :: !reqs;
          Vmm.Machine.Allow);
      after = (fun _ _ -> Vmm.Machine.Allow);
    };
  let rng = Sedspec_util.Prng.create 13L in
  for _ = 1 to 2 do
    D.soak_case ~mode:W.Sequential ~rng ~rare_prob:0.0 ~ops:8 m
  done;
  let interp = Vmm.Machine.interp_of m D.device_name in
  Devir.Arena.reset (Interp.arena interp);
  {
    x_arena = b.Sedspec.Pipeline.arena;
    x_spec = b.Sedspec.Pipeline.spec;
    x_device_arena = Interp.arena interp;
    x_guest = Vmm.Guest_mem.access (Vmm.Machine.ram m);
    x_reqs = Array.of_list (List.rev !reqs);
  }

let fdc_ctx = lazy (make_ctx "fdc")

type cell = { c_checker : Checker.t; c_ip : Vmm.Machine.interposer }

let make_cell ctx =
  let checker =
    Checker.create ~compiled:ctx.x_arena ~spec:ctx.x_spec
      ~device_arena:ctx.x_device_arena ~guest:ctx.x_guest ()
  in
  { c_checker = checker; c_ip = Checker.interposer checker }

let done_outcome = Interp.Event.Done { response = None }

let replay_range ctx cell lo hi =
  for i = lo to hi - 1 do
    let r = ctx.x_reqs.(i) in
    ignore (cell.c_ip.Vmm.Machine.before r : Vmm.Machine.verdict);
    ignore (cell.c_ip.Vmm.Machine.after r done_outcome : Vmm.Machine.verdict)
  done

let replay ctx cell = replay_range ctx cell 0 (Array.length ctx.x_reqs)

(* The full observable state of a cursor, as one comparable string:
   every anomaly, every statistic, and the raw shadow bytes. *)
let transcript cell =
  let c = cell.c_checker in
  let anoms =
    List.map (Format.asprintf "%a" Checker.pp_anomaly) (Checker.anomalies c)
  in
  let s = Checker.stats c in
  Printf.sprintf "anoms=[%s] ia=%d ok=%d bail=%d defer=%d nodes=%d shadow=%s"
    (String.concat ";" anoms)
    s.Checker.interactions s.Checker.walks_ok s.Checker.bails
    s.Checker.deferred s.Checker.nodes_walked
    (let b = Checker.shadow_snapshot c in
     let out = Buffer.create (2 * Bytes.length b) in
     Bytes.iter (fun ch -> Buffer.add_string out (Printf.sprintf "%02x" (Char.code ch))) b;
     Buffer.contents out)

let test_concurrent_equals_sequential () =
  (* 8 cursors on one arena, 3 replay passes each.  Reference: each cell
     driven alone, serially.  Probe: the same population partitioned
     across 4 Runner domains, all walking the one arena concurrently.
     Every cell's transcript must be bit-identical to its reference. *)
  let ctx = Lazy.force fdc_ctx in
  let n = 8 and passes = 3 in
  Alcotest.(check bool) "stream is non-trivial" true
    (Array.length ctx.x_reqs > 50);
  let drive cells (lo, hi) =
    for i = lo to hi - 1 do
      for _ = 1 to passes do
        replay ctx cells.(i)
      done
    done
  in
  let seq_cells = Array.init n (fun _ -> make_cell ctx) in
  drive seq_cells (0, n);
  let reference = Array.map transcript seq_cells in
  let con_cells = Array.init n (fun _ -> make_cell ctx) in
  Array.iter
    (fun c ->
      match Checker.compiled_arena c.c_checker with
      | Some a -> Alcotest.(check bool) "cell shares the arena" true (a == ctx.x_arena)
      | None -> Alcotest.fail "cell has no arena")
    con_cells;
  ignore
    (Runner.map ~jobs:4
       (fun chunk -> drive con_cells chunk)
       [ (0, 2); (2, 4); (4, 6); (6, 8) ]
      : unit list);
  Array.iteri
    (fun i c ->
      Alcotest.(check string)
        (Printf.sprintf "cell %d bit-identical to sequential" i)
        reference.(i) (transcript c))
    con_cells;
  (* The benign stream really is benign: no cursor saw an anomaly. *)
  Array.iter
    (fun c ->
      Alcotest.(check int) "no anomalies" 0
        (List.length (Checker.anomalies c.c_checker)))
    con_cells

let test_reset_heal_never_perturbs_siblings () =
  (* Two cursors replay the stream in interleaved halves; midway, one is
     reset and healed.  The sibling must finish with exactly the
     transcript of an undisturbed lone run, and the reset cursor must
     replay the full stream back to that same reference. *)
  let ctx = Lazy.force fdc_ctx in
  let len = Array.length ctx.x_reqs in
  let half = len / 2 in
  let lone = make_cell ctx in
  replay ctx lone;
  let reference = transcript lone in
  let c1 = make_cell ctx and c2 = make_cell ctx in
  replay_range ctx c1 0 half;
  replay_range ctx c2 0 half;
  Checker.reset c1.c_checker;
  (match Checker.heal c1.c_checker with
  | Checker.Heal_clean -> ()
  | Checker.Heal_resynced _ | Checker.Heal_exhausted _ ->
    Alcotest.fail "freshly reset cursor must heal clean");
  replay_range ctx c2 half len;
  Alcotest.(check string) "sibling transcript undisturbed by reset/heal"
    reference (transcript c2);
  replay ctx c1;
  Alcotest.(check string) "reset cursor replays to the reference" reference
    (transcript c1)

let () =
  Alcotest.run "cursor"
    [
      ( "isolation",
        [
          Alcotest.test_case "4 domains x 8 cursors == sequential" `Slow
            test_concurrent_equals_sequential;
          Alcotest.test_case "reset/heal isolated to its cursor" `Slow
            test_reset_heal_never_perturbs_siblings;
        ] );
    ]
