(* Unit and property tests for the device IR: widths, expressions,
   statements, layouts, arenas (C struct semantics), program addressing and
   validation. *)

open Devir
open Devir.Dsl

let widths = [ Width.W8; Width.W16; Width.W32; Width.W64 ]

let test_width_basics () =
  Alcotest.(check int) "bits w16" 16 (Width.bits Width.W16);
  Alcotest.(check int) "bytes w32" 4 (Width.bytes Width.W32);
  Alcotest.(check int64) "mask w8" 0xFFL (Width.mask Width.W8);
  Alcotest.(check int64) "truncate" 0x34L (Width.truncate Width.W8 0x1234L);
  Alcotest.(check int64) "sign extend" (-1L) (Width.sign_extend Width.W8 0xFFL);
  Alcotest.(check int64) "max signed w16" 32767L (Width.max_signed Width.W16);
  Alcotest.(check int64) "min signed w16" (-32768L) (Width.min_signed Width.W16)

let prop_truncate_idempotent =
  QCheck.Test.make ~name:"truncate is idempotent" ~count:500 QCheck.int64
    (fun v ->
      List.for_all
        (fun w -> Width.truncate w (Width.truncate w v) = Width.truncate w v)
        widths)

let prop_truncate_fits =
  QCheck.Test.make ~name:"truncated values fit unsigned" ~count:500 QCheck.int64
    (fun v ->
      List.for_all (fun w -> Width.fits_unsigned w (Width.truncate w v))
        [ Width.W8; Width.W16; Width.W32 ])

let prop_sign_extend_roundtrip =
  QCheck.Test.make ~name:"sign_extend/truncate roundtrip" ~count:500
    QCheck.(int_range (-128) 127)
    (fun v ->
      Width.sign_extend Width.W8 (Width.truncate Width.W8 (Int64.of_int v))
      = Int64.of_int v)

let test_expr_fields () =
  let e = (fld "a" +% bufb "buf" (fld "idx")) ==% prm "data" in
  Alcotest.(check (list string)) "fields" [ "a"; "buf"; "idx" ] (Expr.fields e);
  Alcotest.(check (list string)) "params" [ "data" ] (Expr.params e);
  Alcotest.(check (list string)) "locals" [] (Expr.locals e)

let test_expr_subst () =
  let e = lcl "x" +% c 1 in
  let e' = Expr.subst_local "x" (fld "f") e in
  Alcotest.(check (list string)) "substituted" [ "f" ] (Expr.fields e');
  Alcotest.(check (list string)) "no local left" [] (Expr.locals e')

let test_expr_dedup () =
  let e = fld "a" +% fld "a" in
  Alcotest.(check (list string)) "deduplicated" [ "a" ] (Expr.fields e)

let test_stmt_classification () =
  let s = setb "buf" (fld "pos") (prm "data") in
  Alcotest.(check (list string)) "writes buf" [ "buf" ] (Stmt.fields_written s);
  Alcotest.(check (list string)) "reads pos" [ "pos" ] (Stmt.fields_read s);
  let s2 = local "tmp" (fld "a") in
  Alcotest.(check (list string)) "local written" [ "tmp" ] (Stmt.locals_written s2);
  let s3 = Stmt.Host_value { local = "hv"; key = "k" } in
  Alcotest.(check (list string)) "host value writes local" [ "hv" ]
    (Stmt.locals_written s3);
  Alcotest.(check bool) "touches state" true
    (Stmt.touches_state (fun f -> f = "buf") s);
  Alcotest.(check bool) "does not touch" false
    (Stmt.touches_state (fun f -> f = "other") s)

let test_term_successors () =
  Alcotest.(check (list string)) "branch succs" [ "t"; "f" ]
    (Term.successors (br (c 1) "t" "f"));
  Alcotest.(check (list string)) "switch succs" [ "a"; "b"; "d" ]
    (Term.successors (switch (c 0) [ (1, "a"); (2, "b") ] "d"));
  Alcotest.(check (list string)) "halt succs" [] (Term.successors halt)

let sample_layout =
  Layout.make
    [
      Layout.reg ~hw:true ~init:5L "r8" Width.W8;
      Layout.reg "r32" Width.W32;
      Layout.buf "buf" 16;
      Layout.fn_ptr ~init:0xAAL "fp";
      Layout.reg "tail" Width.W16;
    ]

let test_layout_offsets () =
  Alcotest.(check int) "r8 at 0" 0 (Layout.offset sample_layout "r8");
  Alcotest.(check int) "r32 at 1" 1 (Layout.offset sample_layout "r32");
  Alcotest.(check int) "buf at 5" 5 (Layout.offset sample_layout "buf");
  Alcotest.(check int) "fp at 21" 21 (Layout.offset sample_layout "fp");
  Alcotest.(check int) "size" 31 (Layout.size sample_layout);
  Alcotest.(check int) "buf size" 16 (Layout.buf_size sample_layout "buf")

let test_layout_field_at () =
  (match Layout.field_at sample_layout 6 with
  | Some (f, off) ->
    Alcotest.(check string) "covers buf" "buf" f.Layout.name;
    Alcotest.(check int) "inner offset" 1 off
  | None -> Alcotest.fail "no field");
  Alcotest.(check bool) "past end" true (Layout.field_at sample_layout 31 = None)

let test_layout_duplicate_rejected () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Layout.make: duplicate field x")
    (fun () -> ignore (Layout.make [ Layout.reg "x" Width.W8; Layout.reg "x" Width.W8 ]))

let test_layout_zero_buf_rejected () =
  Alcotest.check_raises "empty buffer"
    (Invalid_argument "Layout.make: buffer b has size 0")
    (fun () -> ignore (Layout.make [ Layout.buf "b" 0 ]))

let test_arena_init_and_reset () =
  let a = Arena.create sample_layout in
  Alcotest.(check int64) "init value" 5L (Arena.get a "r8");
  Alcotest.(check int64) "fn ptr init" 0xAAL (Arena.get a "fp");
  Arena.set a "r8" 0x1FFL;
  Alcotest.(check int64) "truncated write" 0xFFL (Arena.get a "r8");
  Arena.reset a;
  Alcotest.(check int64) "reset restores" 5L (Arena.get a "r8")

let test_arena_neighbor_corruption () =
  (* Writing past [buf] lands in [fp] — the C struct aliasing the exploits
     rely on. *)
  let a = Arena.create sample_layout in
  for i = 0 to 7 do
    Arena.set_buf_byte a "buf" (16 + i) 0x42
  done;
  Alcotest.(check int64) "fp corrupted" 0x4242424242424242L (Arena.get a "fp")

let test_arena_escape_raises () =
  let a = Arena.create sample_layout in
  Alcotest.check_raises "escape"
    (Arena.Out_of_arena { field = "buf"; index = 26 })
    (fun () -> Arena.set_buf_byte a "buf" 26 1)

let test_arena_negative_index () =
  let a = Arena.create sample_layout in
  Arena.set a "r32" 0xDDL;
  (* buf starts at 5; index -4 is the first byte of r32. *)
  Alcotest.(check int) "reads preceding field" 0xDD (Arena.get_buf_byte a "buf" (-4))

let test_arena_snapshot_restore () =
  let a = Arena.create sample_layout in
  Arena.set a "r32" 77L;
  let snap = Arena.snapshot a in
  Arena.set a "r32" 99L;
  Arena.restore a snap;
  Alcotest.(check int64) "restored" 77L (Arena.get a "r32")

let test_arena_copy_and_spans () =
  let a = Arena.create sample_layout and b = Arena.create sample_layout in
  Arena.set a "r32" 123L;
  Arena.blit_to_buf a "buf" 0 (Bytes.of_string "hello");
  Arena.copy_into ~src:a ~dst:b;
  Alcotest.(check int64) "copied scalar" 123L (Arena.get b "r32");
  Alcotest.(check string) "copied buf" "hello"
    (Bytes.to_string (Arena.read_buf b "buf" 0 5));
  (* span copy: only r32's extent *)
  let c' = Arena.create sample_layout in
  Arena.set a "r32" 55L;
  Arena.copy_spans ~spans:[ (1, 4) ] ~src:a ~dst:c';
  Alcotest.(check int64) "span copied" 55L (Arena.get c' "r32");
  Alcotest.(check string) "buf untouched by span copy" "\000\000\000\000\000"
    (Bytes.to_string (Arena.read_buf c' "buf" 0 5))

let prop_arena_scalar_roundtrip =
  QCheck.Test.make ~name:"arena scalar write/read roundtrip" ~count:300
    QCheck.int64
    (fun v ->
      let a = Arena.create sample_layout in
      Arena.set a "r32" v;
      Arena.get a "r32" = Width.truncate Width.W32 v)

let prop_arena_buf_roundtrip =
  QCheck.Test.make ~name:"arena buffer byte roundtrip" ~count:300
    QCheck.(pair (int_range 0 15) (int_range 0 255))
    (fun (i, v) ->
      let a = Arena.create sample_layout in
      Arena.set_buf_byte a "buf" i v;
      Arena.get_buf_byte a "buf" i = v)

(* Program addressing over all shipped devices. *)
let all_programs () =
  let v = Devices.Qemu_version.v in
  [
    Devices.Fdc.program ~version:(v 2 3 0);
    Devices.Fdc.program ~version:Devices.Qemu_version.latest;
    Devices.Sdhci.program ~version:(v 5 2 0);
    Devices.Sdhci.program ~version:Devices.Qemu_version.latest;
    Devices.Pcnet.program ~version:(v 2 4 0);
    Devices.Pcnet.program ~version:(v 2 6 0);
    Devices.Pcnet.program ~version:Devices.Qemu_version.latest;
    Devices.Ehci.program ~version:(v 5 1 0);
    Devices.Ehci.program ~version:Devices.Qemu_version.latest;
    Devices.Scsi.program ~version:(v 2 4 0);
    Devices.Scsi.program ~version:(v 2 6 0);
    Devices.Scsi.program ~version:Devices.Qemu_version.latest;
  ]

let test_program_addressing () =
  List.iter
    (fun p ->
      Program.iter_blocks p (fun bref _ ->
          let addr = Program.address_of p bref in
          match Program.block_at p addr with
          | Some bref' ->
            Alcotest.(check string) "roundtrip"
              (Program.bref_to_string bref)
              (Program.bref_to_string bref')
          | None -> Alcotest.fail "address not resolvable"))
    (all_programs ())

let test_program_code_range () =
  List.iter
    (fun p ->
      let lo, hi = Program.code_range p in
      Alcotest.(check bool) "range covers blocks" true
        (Int64.sub hi lo = Int64.of_int (16 * Program.block_count p)))
    (all_programs ())

let test_program_duplicate_handler () =
  let h = handler "h" ~params:[] [ entry "e" [] halt ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Program.make ~name:"x" ~layout:sample_layout [ h; h ]);
       false
     with Invalid_argument _ -> true)

let test_validate_all_devices () =
  List.iter (fun p -> Validate.check_exn p) (all_programs ())

let test_validate_catches_bad_successor () =
  let h = handler "h" ~params:[] [ entry "e" [] (goto "missing") ] in
  let p = Program.make ~name:"bad" ~layout:sample_layout [ h ] in
  Alcotest.(check bool) "errors found" true (Validate.check p <> [])

let test_validate_catches_unknown_field () =
  let h =
    handler "h" ~params:[]
      [ entry "e" [ set "nope" (c 1) ] (goto "x"); exit_ "x" [] ]
  in
  let p = Program.make ~name:"bad" ~layout:sample_layout [ h ] in
  Alcotest.(check bool) "errors found" true (Validate.check p <> [])

let test_validate_catches_buf_as_scalar () =
  let h =
    handler "h" ~params:[]
      [ entry "e" [ set "buf" (c 1) ] (goto "x"); exit_ "x" [] ]
  in
  let p = Program.make ~name:"bad" ~layout:sample_layout [ h ] in
  Alcotest.(check bool) "errors found" true (Validate.check p <> [])

let test_validate_catches_undeclared_param () =
  let h =
    handler "h" ~params:[ "addr" ]
      [ entry "e" [ set "r32" (prm "data") ] (goto "x"); exit_ "x" [] ]
  in
  let p = Program.make ~name:"bad" ~layout:sample_layout [ h ] in
  Alcotest.(check bool) "errors found" true (Validate.check p <> [])

let test_validate_catches_unassigned_local () =
  let h =
    handler "h" ~params:[]
      [ entry "e" [ set "r32" (lcl "ghost") ] (goto "x"); exit_ "x" [] ]
  in
  let p = Program.make ~name:"bad" ~layout:sample_layout [ h ] in
  Alcotest.(check bool) "errors found" true (Validate.check p <> [])

let test_validate_requires_exit () =
  let h = handler "h" ~params:[] [ entry "e" [] halt ] in
  let p = Program.make ~name:"bad" ~layout:sample_layout [ h ] in
  Alcotest.(check bool) "errors found" true (Validate.check p <> [])

let test_validate_cmd_decision_needs_switch () =
  let h =
    handler "h" ~params:[]
      [
        entry "e" [] (goto "d");
        cmd_decision "d" [] (switch (fld "r8") [] "x");
        blk "bad" [] halt |> (fun b -> { b with Block.kind = Block.Cmd_decision });
        exit_ "x" [];
      ]
  in
  let p = Program.make ~name:"bad" ~layout:sample_layout [ h ] in
  Alcotest.(check bool) "errors found" true (Validate.check p <> [])

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_validate_result_ok () =
  List.iter
    (fun p ->
      match Validate.validate_result p with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    (all_programs ())

let test_validate_result_names_every_block () =
  (* Three independently broken blocks: the report must name all of them,
     not stop at the first. *)
  let h =
    handler "h" ~params:[]
      [
        entry "first_bad" [] (goto "missing");
        blk "second_bad" [ set "nope" (c 1) ] (goto "x");
        blk "third_bad" [ set "r32" (lcl "ghost") ] (goto "x");
        exit_ "x" [];
      ]
  in
  let p = Program.make ~name:"multi" ~layout:sample_layout [ h ] in
  match Validate.validate_result p with
  | Ok () -> Alcotest.fail "expected errors"
  | Error msg ->
    Alcotest.(check bool) "names the program" true (contains msg "multi");
    List.iter
      (fun label ->
        Alcotest.(check bool) ("names " ^ label) true (contains msg label))
      [ "first_bad"; "second_bad"; "third_bad" ]

let test_validate_check_exn_matches_result () =
  let h = handler "h" ~params:[] [ entry "e" [] (goto "missing") ] in
  let p = Program.make ~name:"bad" ~layout:sample_layout [ h ] in
  let expected =
    match Validate.validate_result p with
    | Error msg -> msg
    | Ok () -> Alcotest.fail "expected errors"
  in
  match Validate.check_exn p with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    Alcotest.(check string) "same report" expected msg

let test_pretty_renders_all_devices () =
  List.iter
    (fun p ->
      let s = Pretty.program_to_string p in
      Alcotest.(check bool) "has struct" true
        (String.length s > 200
        && String.sub s 0 10 = "/* device:");
      (* every handler appears *)
      List.iter
        (fun (h : Program.handler) ->
          let needle = "void " ^ h.hname in
          let found =
            let n = String.length needle and m = String.length s in
            let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) (h.hname ^ " rendered") true found)
        (Program.handlers p))
    (all_programs ())

let test_qemu_version () =
  let open Devices.Qemu_version in
  Alcotest.(check string) "to_string" "2.3.0" (to_string (of_string "2.3.0"));
  Alcotest.(check bool) "lt" true (v 2 3 0 < v 2 3 1);
  Alcotest.(check bool) "ge" true (v 5 1 1 >= v 5 1 1);
  Alcotest.(check bool) "latest newest" true (latest >= v 99 0 0)

let () =
  Alcotest.run "devir"
    [
      ( "width",
        [
          Alcotest.test_case "basics" `Quick test_width_basics;
          QCheck_alcotest.to_alcotest prop_truncate_idempotent;
          QCheck_alcotest.to_alcotest prop_truncate_fits;
          QCheck_alcotest.to_alcotest prop_sign_extend_roundtrip;
        ] );
      ( "expr",
        [
          Alcotest.test_case "fields/params/locals" `Quick test_expr_fields;
          Alcotest.test_case "subst_local" `Quick test_expr_subst;
          Alcotest.test_case "dedup" `Quick test_expr_dedup;
        ] );
      ( "stmt/term",
        [
          Alcotest.test_case "classification" `Quick test_stmt_classification;
          Alcotest.test_case "successors" `Quick test_term_successors;
        ] );
      ( "layout",
        [
          Alcotest.test_case "offsets" `Quick test_layout_offsets;
          Alcotest.test_case "field_at" `Quick test_layout_field_at;
          Alcotest.test_case "duplicate rejected" `Quick test_layout_duplicate_rejected;
          Alcotest.test_case "zero buffer rejected" `Quick test_layout_zero_buf_rejected;
        ] );
      ( "arena",
        [
          Alcotest.test_case "init and reset" `Quick test_arena_init_and_reset;
          Alcotest.test_case "neighbor corruption" `Quick test_arena_neighbor_corruption;
          Alcotest.test_case "escape raises" `Quick test_arena_escape_raises;
          Alcotest.test_case "negative index aliases" `Quick test_arena_negative_index;
          Alcotest.test_case "snapshot/restore" `Quick test_arena_snapshot_restore;
          Alcotest.test_case "copy and spans" `Quick test_arena_copy_and_spans;
          QCheck_alcotest.to_alcotest prop_arena_scalar_roundtrip;
          QCheck_alcotest.to_alcotest prop_arena_buf_roundtrip;
        ] );
      ( "program",
        [
          Alcotest.test_case "address roundtrip (all devices)" `Quick test_program_addressing;
          Alcotest.test_case "code range" `Quick test_program_code_range;
          Alcotest.test_case "duplicate handler" `Quick test_program_duplicate_handler;
          Alcotest.test_case "pseudo-C rendering" `Quick test_pretty_renders_all_devices;
          Alcotest.test_case "qemu versions" `Quick test_qemu_version;
        ] );
      ( "validate",
        [
          Alcotest.test_case "all shipped devices are well-formed" `Quick test_validate_all_devices;
          Alcotest.test_case "bad successor" `Quick test_validate_catches_bad_successor;
          Alcotest.test_case "unknown field" `Quick test_validate_catches_unknown_field;
          Alcotest.test_case "buffer as scalar" `Quick test_validate_catches_buf_as_scalar;
          Alcotest.test_case "undeclared param" `Quick test_validate_catches_undeclared_param;
          Alcotest.test_case "unassigned local" `Quick test_validate_catches_unassigned_local;
          Alcotest.test_case "missing exit" `Quick test_validate_requires_exit;
          Alcotest.test_case "cmd-decision needs switch" `Quick test_validate_cmd_decision_needs_switch;
          Alcotest.test_case "validate_result ok on shipped devices" `Quick
            test_validate_result_ok;
          Alcotest.test_case "report names every offending block" `Quick
            test_validate_result_names_every_block;
          Alcotest.test_case "check_exn carries the same report" `Quick
            test_validate_check_exn_matches_result;
        ] );
    ]
