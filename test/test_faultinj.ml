(* Tests for the deterministic fault-injection harness (lib/faultinj):
   plan generation, the pure corruption primitives, spec-corruption
   detection, and a small end-to-end campaign whose report must be
   bit-identical across worker counts and free of escapes. *)

module Prng = Sedspec_util.Prng
module Plan = Faultinj.Plan
module Inject = Faultinj.Inject
module Campaign = Faultinj.Campaign

(* Spec builds are the expensive part; keep them small and shared via
   the single-flight cache. *)
let () = Metrics.Spec_cache.training_cases := 12

let test_plan_generation_deterministic () =
  let gen seed = Plan.generate (Prng.create seed) ~n:24 in
  Alcotest.(check bool) "same seed, same plans" true (gen 7L = gen 7L);
  Alcotest.(check bool) "different seeds differ" true (gen 7L <> gen 8L);
  let plans = gen 7L in
  Alcotest.(check int) "n plans" 24 (List.length plans);
  (* The generator draws every parameter from the published pools. *)
  List.iter
    (fun (p : Plan.t) ->
      match p.site with
      | Plan.Guest_corrupt { mask } ->
        Alcotest.(check bool) "mask from pool" true (Array.mem mask Plan.masks)
      | Plan.Guest_short { limit } ->
        Alcotest.(check bool) "limit from pool" true
          (Array.mem limit Plan.limits)
      | Plan.Walk_delay { spin; _ } ->
        Alcotest.(check bool) "spin from pool" true (Array.mem spin Plan.spins)
      | Plan.Resp_dma_len { delta } ->
        Alcotest.(check bool) "delta from pool" true
          (Array.mem delta Plan.resp_deltas)
      | Plan.Resp_irq_storm { burst } ->
        Alcotest.(check bool) "burst from pool" true
          (Array.mem burst Plan.bursts)
      | Plan.Resp_read_corrupt { mask } | Plan.Resp_store_corrupt { mask } ->
        Alcotest.(check bool) "resp mask from pool" true
          (Array.mem mask Plan.masks)
      | Plan.Spec_bit_flip _ | Plan.Spec_truncate | Plan.Walk_raise _
      | Plan.Guard_raise _ -> ())
    plans

let test_corrupt_byte_pure_and_partial () =
  (* The corruption pattern is a pure function of (addr, mask): the same
     address always corrupts (or not) the same way, a selected address
     really changes the byte, and only a strict subset is selected. *)
  let mask = 0xDEADBEEFL in
  let changed = ref 0 in
  for a = 0 to 4095 do
    let addr = Int64.of_int a in
    let b = a land 0xFF in
    let b1 = Inject.corrupt_byte ~mask addr b in
    let b2 = Inject.corrupt_byte ~mask addr b in
    if b1 <> b2 then Alcotest.failf "impure at addr %d" a;
    if b1 < 0 || b1 > 255 then Alcotest.failf "out of byte range at %d" a;
    if b1 <> b then incr changed
  done;
  Alcotest.(check bool) "corrupts some addresses" true (!changed > 0);
  Alcotest.(check bool) "not every address" true (!changed < 4096)

let test_short_byte_boundary () =
  let limit = 0x1000L in
  Alcotest.(check int) "below the limit passes through" 0xAB
    (Inject.short_byte ~limit 0xFFFL 0xAB);
  Alcotest.(check int) "at the limit reads zero" 0
    (Inject.short_byte ~limit 0x1000L 0xAB);
  (* Unsigned comparison: a top-bit address is above any small limit. *)
  Alcotest.(check int) "negative bit pattern is high, not low" 0
    (Inject.short_byte ~limit Int64.min_int 0xAB)

let test_corrupt_spec_never_silent () =
  (* Every corrupted spec either fails to load (crc or parse) or reloads
     to a semantically identical spec; a silently different spec would
     be enforcement drift. *)
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let built = Metrics.Spec_cache.built w W.paper_version in
  let text = Sedspec.Persist.to_string built.Sedspec.Pipeline.spec in
  let program = Sedspec.Es_cfg.program built.Sedspec.Pipeline.spec in
  let rng = Prng.create 11L in
  let detected = ref 0 in
  for _ = 1 to 60 do
    let site =
      if Prng.chance rng 0.5 then
        Plan.Spec_bit_flip { flips = 1 + Prng.int rng 4 }
      else Plan.Spec_truncate
    in
    let corrupted = Inject.corrupt_spec rng site text in
    match Sedspec.Persist.of_string ~program corrupted with
    | Error _ -> incr detected
    | Ok spec' ->
      if Sedspec.Persist.to_string spec' <> text then
        Alcotest.failf "silent corruption accepted (%s)"
          (Plan.site_to_string site)
  done;
  Alcotest.(check bool) "most corruptions detected" true (!detected > 30)

let smoke_opts jobs =
  {
    Campaign.devices = [ "fdc" ];
    plans_per_combo = 4;
    cases_per_plan = 2;
    ops_per_case = 3;
    seed = 5L;
    jobs;
  }

let smoke = lazy (Campaign.run (smoke_opts 1))

let test_campaign_contains_everything () =
  let r = Lazy.force smoke in
  let t = Campaign.totals r in
  Alcotest.(check bool) "faults fired" true (t.Campaign.injected > 0);
  Alcotest.(check int) "no escaped exceptions" 0 t.Campaign.escaped;
  Alcotest.(check int) "no silent fail-opens" 0 t.Campaign.fail_open;
  Alcotest.(check int) "no silent spec corruption" 0 t.Campaign.spec_silent;
  Alcotest.(check bool) "verdict passes" true (Campaign.passed r);
  (* Both modes and both engines actually ran. *)
  Alcotest.(check int) "four combos for one device" 4 (List.length r.Campaign.combos)

let test_campaign_jobs_bit_identical () =
  let render r = Sedspec_util.Json.to_string (Campaign.report_to_json r) in
  let r1 = render (Lazy.force smoke) in
  let r2 = render (Campaign.run (smoke_opts 2)) in
  Alcotest.(check string) "jobs 1 = jobs 2" r1 r2

let () =
  Alcotest.run "faultinj"
    [
      ( "plan",
        [
          Alcotest.test_case "generation is seed-deterministic" `Quick
            test_plan_generation_deterministic;
        ] );
      ( "inject",
        [
          Alcotest.test_case "corrupt_byte is pure and partial" `Quick
            test_corrupt_byte_pure_and_partial;
          Alcotest.test_case "short_byte unsigned boundary" `Quick
            test_short_byte_boundary;
          Alcotest.test_case "spec corruption is never silent" `Quick
            test_corrupt_spec_never_silent;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "contains every fault" `Quick
            test_campaign_contains_everything;
          Alcotest.test_case "jobs 1 = jobs 2 bit-identical" `Quick
            test_campaign_jobs_bit_identical;
        ] );
    ]
