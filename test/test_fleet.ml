(* Fleet supervisor tests: governor ladder + hard invariant, deadline
   watchdog, VM bulkheads, spec-acquisition retry, and jobs-independent
   fleet reports. *)

module Governor = Fleet.Governor
module Vm = Fleet.Vm
module Supervisor = Fleet.Supervisor
module Checker = Sedspec.Checker

let () = Metrics.Spec_cache.training_cases := 12

let state = Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Governor.state_to_string s))
    ( = )

(* --- Governor ladder ------------------------------------------------------ *)

let test_governor_degrades_and_restores () =
  let g =
    Governor.create
      ~config:{ window = 4; degrade_burn = 5; restore_burn = 1; restore_clean = 3 }
      ()
  in
  Alcotest.check state "starts protecting" Governor.Protection (Governor.state g);
  (* Burn through the budget: 3 + 3 = 6 > 5 degrades one rung and clears
     the window (the incident is charged once). *)
  (match Governor.observe g ~burn:3 with
  | Governor.Steady -> ()
  | _ -> Alcotest.fail "no transition under the threshold");
  (match Governor.observe g ~burn:3 with
  | Governor.Degraded (Governor.Protection, Governor.Enhancement) -> ()
  | _ -> Alcotest.fail "expected Protection -> Enhancement");
  Alcotest.(check int) "window cleared on transition" 0 (Governor.burn_in_window g);
  (* Another incident descends to the bottom rung and stays there. *)
  ignore (Governor.observe g ~burn:6);
  Alcotest.check state "fail-open" Governor.Fail_open (Governor.state g);
  ignore (Governor.observe g ~burn:6);
  Alcotest.check state "bottom rung holds" Governor.Fail_open (Governor.state g);
  (* A sustained clean run restores one rung at a time.  The failed
     degrade above left a stale burn of 6 in the window, so the first
     [window - 1] zeros only flush it; then [restore_clean] eligible
     observations buy the rung back. *)
  for i = 1 to 5 do
    match Governor.observe g ~burn:0 with
    | Governor.Steady -> ()
    | _ -> Alcotest.failf "flush/streak observation %d must be Steady" i
  done;
  (match Governor.observe g ~burn:0 with
  | Governor.Restored (Governor.Fail_open, Governor.Enhancement) -> ()
  | _ -> Alcotest.fail "expected Fail_open -> Enhancement after clean streak");
  ignore (Governor.observe g ~burn:0);
  ignore (Governor.observe g ~burn:0);
  (match Governor.observe g ~burn:0 with
  | Governor.Restored (Governor.Enhancement, Governor.Protection) -> ()
  | _ -> Alcotest.fail "expected Enhancement -> Protection");
  Alcotest.check state "fully restored" Governor.Protection (Governor.state g);
  Alcotest.(check int) "two degrades" 2 (Governor.degrades g);
  Alcotest.(check int) "two restores" 2 (Governor.restores g)

let test_governor_hysteresis_boundary () =
  (* A burn rate sitting on either boundary must hold the rung forever:
     exactly degrade_burn never degrades, and anything above restore_burn
     breaks the clean streak so it never restores either. *)
  let config =
    { Governor.window = 3; degrade_burn = 6; restore_burn = 2; restore_clean = 2 }
  in
  let g = Governor.create ~config () in
  for _ = 1 to 50 do
    (* A steady burn of 2 saturates the 3-wide window at exactly
       degrade_burn = 6 (the > is strict) and sits above restore_burn
       from the second observation on: the rung must hold forever. *)
    (match Governor.observe g ~burn:2 with
    | Governor.Steady -> ()
    | _ -> Alcotest.fail "boundary burn must not transition");
    if Governor.burn_in_window g > 6 then Alcotest.fail "ring buffer sum wrong"
  done;
  Alcotest.check state "degrade boundary holds the rung" Governor.Protection
    (Governor.state g);
  (* Push one rung down, then keep the window sum inside the hysteresis
     band (restore_burn < sum <= degrade_burn): no oscillation either
     way.  The opening 3 keeps the transient sums out of the
     restore-eligible region while the window refills. *)
  ignore (Governor.observe g ~burn:7);
  Alcotest.check state "degraded" Governor.Enhancement (Governor.state g);
  (match Governor.observe g ~burn:3 with
  | Governor.Steady -> ()
  | _ -> Alcotest.fail "band refill must not transition");
  for _ = 1 to 50 do
    match Governor.observe g ~burn:1 with
    | Governor.Steady -> ()
    | _ -> Alcotest.fail "hysteresis band must not transition"
  done;
  Alcotest.check state "band holds the rung" Governor.Enhancement
    (Governor.state g);
  Alcotest.(check int) "one degrade total" 1 (Governor.degrades g);
  Alcotest.(check int) "no restores" 0 (Governor.restores g)

let test_governor_preconditions () =
  let bad config =
    match Governor.create ~config () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid governor config accepted"
  in
  bad { Governor.window = 0; degrade_burn = 2; restore_burn = 1; restore_clean = 1 };
  bad { Governor.window = 4; degrade_burn = 2; restore_burn = 2; restore_clean = 1 };
  bad { Governor.window = 4; degrade_burn = 2; restore_burn = 1; restore_clean = 0 };
  let g = Governor.create () in
  match Governor.observe g ~burn:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative burn accepted"

(* --- Hard invariant: parameter checks halt in every rung ------------------ *)

let test_invariant_parameter_check_halts_in_every_state () =
  (* CVE-2021-3409 (sdhci) is detected by the parameter check.  Replay
     it under the checker configuration of each governor rung: every
     rung must detect AND block it — degradation may only relax the
     warn-only strategies and the internal-error policy. *)
  let attack = Attacks.Attack.find "CVE-2021-3409" in
  let w = Workload.Samples.find attack.Attacks.Attack.device in
  List.iter
    (fun gstate ->
      let config =
        Governor.checker_config gstate ~base:Checker.default_config
      in
      let m, checker =
        Metrics.Spec_cache.fresh_protected_machine ~config w
          attack.Attacks.Attack.qemu_version
      in
      attack.Attacks.Attack.setup m;
      ignore (Checker.drain_anomalies checker);
      (try attack.Attacks.Attack.run m with Exit -> ());
      let anoms = Checker.drain_anomalies checker in
      let name = Governor.state_to_string gstate in
      Alcotest.(check bool)
        (name ^ ": parameter-check anomaly raised")
        true
        (List.exists
           (fun (a : Checker.anomaly) ->
             a.Checker.strategy = Checker.Parameter_check)
           anoms);
      Alcotest.(check bool)
        (name ^ ": exploitation blocked (VM halted)")
        true (Vmm.Machine.halted m))
    [ Governor.Protection; Governor.Enhancement; Governor.Fail_open ]

let test_checker_config_keeps_parameter_check () =
  (* Even a base config that dropped the parameter check gets it back. *)
  let base = { Checker.default_config with Checker.strategies = [] } in
  List.iter
    (fun gstate ->
      let c = Governor.checker_config gstate ~base in
      Alcotest.(check bool)
        (Governor.state_to_string gstate ^ " keeps Parameter_check")
        true
        (List.mem Checker.Parameter_check c.Checker.strategies))
    [ Governor.Protection; Governor.Enhancement; Governor.Fail_open ]

(* --- Deadline watchdog ---------------------------------------------------- *)

let test_deadline_overrun_contained () =
  (* An absurdly small step budget: every walk overruns, and each
     overrun must come back as a contained Internal_error anomaly (the
     fail-closed halt), never a hang or an escaped exception. *)
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m, checker =
    Metrics.Spec_cache.fresh_protected_machine ~vmexit_cost:0 w
      (Devices.Qemu_version.v 2 3 0)
  in
  Checker.set_deadline checker (Some 1);
  Alcotest.(check (option int)) "deadline armed" (Some 1)
    (Checker.deadline checker);
  let d = Workload.Fdc_driver.create m in
  ignore (Workload.Fdc_driver.reset d);
  Alcotest.(check bool) "halted by the watchdog" true (Vmm.Machine.halted m);
  let anoms = Checker.drain_anomalies checker in
  Alcotest.(check bool) "internal-error anomaly" true
    (List.exists
       (fun (a : Checker.anomaly) -> a.Checker.strategy = Checker.Internal_error)
       anoms);
  Alcotest.(check bool) "overruns counted" true
    (Checker.deadline_overruns checker > 0);
  (* Disarm and reset: the machine serves normally again. *)
  Checker.set_deadline checker None;
  Vmm.Machine.resume m;
  Checker.resync checker;
  ignore (Checker.drain_anomalies checker);
  ignore (Workload.Fdc_driver.sense_interrupt d);
  Alcotest.(check bool) "clean with watchdog off" false (Vmm.Machine.halted m);
  (* Budget must be positive. *)
  match Checker.set_deadline checker (Some 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero deadline accepted"

let test_deadline_engines_agree () =
  (* Same step counter in both engines: identical streams must overrun
     identically. *)
  let run engine =
    let w = Workload.Samples.find "fdc" in
    let config = { Checker.default_config with Checker.engine } in
    let m, checker =
      Metrics.Spec_cache.fresh_protected_machine ~config ~vmexit_cost:0 w
        (Devices.Qemu_version.v 2 3 0)
    in
    Checker.set_deadline checker (Some 3);
    let d = Workload.Fdc_driver.create m in
    ignore (Workload.Fdc_driver.reset d);
    (Checker.deadline_overruns checker, Vmm.Machine.halted m)
  in
  let o_c, h_c = run Checker.Compiled in
  let o_i, h_i = run Checker.Interpreted in
  Alcotest.(check int) "same overrun count" o_i o_c;
  Alcotest.(check bool) "same halt verdict" h_i h_c;
  Alcotest.(check bool) "overran" true (o_c > 0)

(* --- Vm bulkhead and spec acquisition ------------------------------------- *)

let test_vm_spec_retry_and_fallback () =
  (* A persisted source that always returns garbage burns its retries
     (CRC/parse failures) and falls back to a fresh pipeline rebuild:
     the VM must come up serving, with the retry accounting visible. *)
  let opts =
    {
      (Vm.default_options ~device:"fdc") with
      Vm.spec_source = Vm.Persisted (fun () -> "corrupt nonsense");
      max_attempts = 3;
    }
  in
  let vm = Vm.create ~index:0 ~seed:11L opts in
  for _ = 1 to 3 do
    Vm.tick vm
  done;
  let r = Vm.report vm in
  Alcotest.(check string) "serving" "ok" r.Vm.r_status;
  Alcotest.(check int) "all retries burned" 3 r.Vm.r_build_attempts;
  Alcotest.(check bool) "fell back to rebuild" true r.Vm.r_build_fallback;
  Alcotest.(check bool) "logical backoff delay accounted" true
    (r.Vm.r_backoff_delay > 0);
  Alcotest.(check bool) "interactions served" true (r.Vm.r_interactions > 0);
  Alcotest.(check int) "stream has one line per tick" 3
    (List.length r.Vm.r_stream);
  (* A good persisted spec loads on the first attempt, no fallback. *)
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let text =
    Sedspec.Persist.to_string
      (Metrics.Spec_cache.built w W.paper_version).Sedspec.Pipeline.spec
  in
  let vm2 =
    Vm.create ~index:1 ~seed:11L
      { opts with Vm.spec_source = Vm.Persisted (fun () -> text) }
  in
  Vm.tick vm2;
  let r2 = Vm.report vm2 in
  Alcotest.(check string) "serving from persisted spec" "ok" r2.Vm.r_status;
  Alcotest.(check int) "first attempt" 1 r2.Vm.r_build_attempts;
  Alcotest.(check bool) "no fallback" false r2.Vm.r_build_fallback

(* --- Shared immutable spec arenas ----------------------------------------- *)

let test_arena_shared_across_vms_and_domains () =
  (* Every cache-acquired VM of a (device, version) must walk the same
     physical compiled arena — that is the tentpole sharing invariant:
     N VMs cost one arena plus N cursors, never N arenas. *)
  let opts = Vm.default_options ~device:"fdc" in
  let vm1 = Vm.create ~index:0 ~seed:5L opts in
  let vm2 = Vm.create ~index:1 ~seed:6L opts in
  let arena_of vm =
    match Vm.arena vm with
    | Some a -> a
    | None -> Alcotest.fail "trained VM has no compiled arena"
  in
  let a1 = arena_of vm1 in
  Alcotest.(check bool) "two VMs, one arena" true (a1 == arena_of vm2);
  Vm.tick vm1;
  (match (Vm.report vm1).Vm.r_arena with
  | Some a -> Alcotest.(check bool) "report carries the arena" true (a == a1)
  | None -> Alcotest.fail "report must flag the shared arena");
  (* The same holds across Runner domains: arenas live on the shared
     major heap, so [==] is meaningful between domains, and the
     single-flight cache must hand every domain the same one. *)
  let arenas =
    Sedspec_util.Runner.map ~jobs:4
      (fun i -> arena_of (Vm.create ~index:i ~seed:(Int64.of_int (100 + i)) opts))
      [ 2; 3; 4; 5 ]
  in
  List.iter
    (fun a ->
      Alcotest.(check bool) "domain-created VM shares the arena" true (a == a1))
    arenas

let test_spec_cache_failed_build_keeps_healthy_arena () =
  (* A failed build may only evict its own cache marker: the healthy
     arena of a sibling key must survive physically intact, and the
     failed key must rebuild cleanly once the fault clears. *)
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let healthy =
    (Metrics.Spec_cache.built w W.paper_version).Sedspec.Pipeline.arena
  in
  Metrics.Spec_cache.set_build_fault
    (Some (fun _ -> failwith "injected build fault"));
  (match Metrics.Spec_cache.built w Devices.Qemu_version.latest with
  | exception _ -> ()
  | _ -> Alcotest.fail "faulted build must raise");
  Metrics.Spec_cache.set_build_fault None;
  let again =
    (Metrics.Spec_cache.built w W.paper_version).Sedspec.Pipeline.arena
  in
  Alcotest.(check bool) "healthy arena survives the failed sibling" true
    (again == healthy);
  let b1 = Metrics.Spec_cache.built w Devices.Qemu_version.latest in
  let b2 = Metrics.Spec_cache.built w Devices.Qemu_version.latest in
  Alcotest.(check bool) "faulted key rebuilds once, then caches" true
    (b1.Sedspec.Pipeline.arena == b2.Sedspec.Pipeline.arena)

(* --- Fleet determinism and isolation -------------------------------------- *)

let small_fleet jobs =
  {
    (Supervisor.default_options ()) with
    Supervisor.vms = 5;
    ticks = 4;
    seed = 42L;
    jobs;
    devices = [ "fdc"; "sdhci" ];
  }

let test_fleet_jobs_independent () =
  let r1 = Supervisor.run (small_fleet 1) in
  let r4 = Supervisor.run (small_fleet 4) in
  Alcotest.(check string) "report JSON bit-identical jobs 1 vs 4"
    (Supervisor.report_to_json r1)
    (Supervisor.report_to_json r4);
  Alcotest.(check int) "no failed VMs" 0 r1.Supervisor.f_failed_vms;
  Alcotest.(check bool) "fleet served traffic" true
    (r1.Supervisor.f_interactions > 0)

(* --- Shadow walk and the rollout ladder ----------------------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let retrain_fetch device =
  let w = Workload.Samples.find device in
  let module D = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  fun () ->
    Metrics.Spec_cache.built_retrained w D.paper_version
      ~cases:!Metrics.Spec_cache.training_cases

let test_shadow_full_agreement () =
  (* A candidate retrained on the exact same corpus is behaviourally
     identical to the base: the lockstep shadow walk must agree on every
     verdict — zero stricter, zero looser, and no looser tick. *)
  let opts =
    {
      (Vm.default_options ~device:"fdc") with
      Vm.shadow = Some (retrain_fetch "fdc");
    }
  in
  let r =
    Supervisor.run
      {
        Supervisor.vms = 2;
        ticks = 8;
        seed = 11L;
        jobs = 1;
        devices = [ "fdc" ];
        vm_opts = (fun _ -> opts);
      }
  in
  Alcotest.(check int) "no failed VMs" 0 r.Supervisor.f_failed_vms;
  (match r.Supervisor.f_shadow with
  | None -> Alcotest.fail "fleet must aggregate the shadow scoreboard"
  | Some (agree, stricter, looser) ->
    Alcotest.(check bool) "comparisons ran" true (agree > 0);
    Alcotest.(check int) "no stricter verdicts" 0 stricter;
    Alcotest.(check int) "no looser verdicts" 0 looser);
  List.iter
    (fun (vr : Vm.report) ->
      match vr.Vm.r_shadow with
      | None -> Alcotest.fail "every VM shadowed a candidate"
      | Some sh ->
        Alcotest.(check int) "candidate revision bumped" 1 sh.Vm.sh_revision;
        Alcotest.(check (option int)) "never a looser tick" None
          sh.Vm.sh_first_looser_tick;
        Alcotest.(check bool) "sites recorded" true (sh.Vm.sh_sites <> []))
    r.Supervisor.f_vms;
  (* Shadow-enabled stream lines carry the scoreboard suffix. *)
  let first_vm = List.hd r.Supervisor.f_vms in
  List.iter
    (fun line ->
      Alcotest.(check bool) "stream line has sh= suffix" true
        (contains ~sub:" sh=" line))
    first_vm.Vm.r_stream

let test_shadow_jobs_independent () =
  let mk jobs =
    Supervisor.run
      {
        Supervisor.vms = 3;
        ticks = 6;
        seed = 13L;
        jobs;
        devices = [ "fdc" ];
        vm_opts =
          (fun device ->
            {
              (Vm.default_options ~device) with
              Vm.shadow = Some (retrain_fetch "fdc");
            });
      }
  in
  Alcotest.(check string) "shadow report JSON bit-identical jobs 1 vs 4"
    (Supervisor.report_to_json (mk 1))
    (Supervisor.report_to_json (mk 4))

(* A candidate whose training corpus was poisoned with the exploit
   stream: the attack's traffic becomes "benign", so the spec admits the
   CVE's path and the catalogue gate must refuse it at the first rung. *)
let poisoned_recipe ~cve ~device =
  let w = Workload.Samples.find device in
  let module D = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let attack = Attacks.Attack.find cve in
  {
    Fleet.Rollout.rc_name = "poisoned:" ^ cve;
    rc_build =
      (fun version ->
        let m = D.make_machine version in
        let base = D.trainer ~cases:!Metrics.Spec_cache.training_cases in
        let trainer =
          {
            Sedspec.Pipeline.cases = base.Sedspec.Pipeline.cases + 1;
            run_case =
              (fun m i ->
                if i < base.Sedspec.Pipeline.cases then
                  base.Sedspec.Pipeline.run_case m i
                else begin
                  (try attack.Attacks.Attack.setup m with _ -> ());
                  try attack.Attacks.Attack.run m with _ -> ()
                end);
          }
        in
        let b = Sedspec.Pipeline.build m ~device trainer in
        Sedspec.Es_cfg.set_version b.Sedspec.Pipeline.spec ~revision:1
          ~provenance:(Sedspec.Es_cfg.Retrained trainer.Sedspec.Pipeline.cases);
        b);
  }

let test_rollout_gate_covers_grown_cves () =
  (* The catalogue gate replays every detectable catalogued attack of
     the device — including the locator-grown GROWN-* entries — in both
     walk engines and both working modes, so a candidate that would
     miss one can never climb past the first rung. *)
  let w = Workload.Samples.find "sdhci" in
  let recipe =
    Fleet.Rollout.retrained w ~cases:!Metrics.Spec_cache.training_cases
  in
  let checks = Fleet.Rollout.catalogue_gate ~device:"sdhci" recipe in
  let cves = List.sort_uniq compare (List.map (fun g -> g.Fleet.Rollout.g_cve) checks) in
  Alcotest.(check bool) "grown entry gated" true
    (List.mem "GROWN-2021-3409" cves);
  Alcotest.(check bool) "original CVE gated" true
    (List.mem "CVE-2021-3409" cves);
  List.iter
    (fun cve ->
      let of_cve = List.filter (fun g -> g.Fleet.Rollout.g_cve = cve) checks in
      Alcotest.(check int) (cve ^ ": engines x modes") 4 (List.length of_cve);
      List.iter
        (fun g ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s/%s passes" cve g.Fleet.Rollout.g_engine
               g.Fleet.Rollout.g_mode)
            true g.Fleet.Rollout.g_pass)
        of_cve)
    cves

let test_rollout_poisoned_rolled_back_and_latched () =
  Fleet.Rollout.reset_latches ();
  let cfg = Fleet.Rollout.default_config ~device:"scsi" in
  let recipe = poisoned_recipe ~cve:"CVE-2016-4439" ~device:"scsi" in
  let o = Fleet.Rollout.run cfg recipe in
  Alcotest.(check string) "rolled back" "rolled-back"
    (Fleet.Rollout.rung_to_string o.Fleet.Rollout.o_final);
  Alcotest.(check int) "pinned at the base revision" o.Fleet.Rollout.o_base_revision
    o.Fleet.Rollout.o_pinned_revision;
  (match o.Fleet.Rollout.o_rollback with
  | None -> Alcotest.fail "rollback record required"
  | Some rb ->
    Alcotest.(check string) "demoted from the shadow rung" "shadow"
      (Fleet.Rollout.rung_to_string rb.Fleet.Rollout.rb_rung);
    Alcotest.(check bool) "catalogue gate named the CVE" true
      (contains ~sub:"CVE-2016-4439" rb.Fleet.Rollout.rb_reason));
  (* The gate that tripped must show the miss in both engines and modes. *)
  (match o.Fleet.Rollout.o_gates with
  | [ ("shadow", checks) ] ->
    Alcotest.(check bool) "gate checked both engines x both modes" true
      (List.length checks >= 4);
    Alcotest.(check bool) "at least one check failed" true
      (List.exists (fun g -> not g.Fleet.Rollout.g_pass) checks)
  | _ -> Alcotest.fail "exactly the shadow-rung gate ran");
  (* Latched: a second attempt is refused without running anything. *)
  let o2 = Fleet.Rollout.run cfg recipe in
  Alcotest.(check string) "latched on retry" "rolled-back"
    (Fleet.Rollout.rung_to_string o2.Fleet.Rollout.o_final);
  (match o2.Fleet.Rollout.o_rollback with
  | Some rb ->
    Alcotest.(check bool) "latch reason" true
      (String.length rb.Fleet.Rollout.rb_reason >= 8
      && String.sub rb.Fleet.Rollout.rb_reason 0 8 = "latched:")
  | None -> Alcotest.fail "latched outcome carries the rollback");
  Fleet.Rollout.reset_latches ()

let test_rollout_equivalent_retrained_promoted () =
  Fleet.Rollout.reset_latches ();
  let w = Workload.Samples.find "fdc" in
  let cfg =
    {
      (Fleet.Rollout.default_config ~device:"fdc") with
      Fleet.Rollout.vms = 2;
      canary_vms = 1;
      shadow_ticks = 6;
      canary_ticks = 4;
      seed = 7L;
    }
  in
  let recipe =
    Fleet.Rollout.retrained w ~cases:!Metrics.Spec_cache.training_cases
  in
  let o = Fleet.Rollout.run cfg recipe in
  Alcotest.(check string) "promoted" "promoted"
    (Fleet.Rollout.rung_to_string o.Fleet.Rollout.o_final);
  Alcotest.(check int) "pinned at the candidate revision"
    o.Fleet.Rollout.o_cand_revision o.Fleet.Rollout.o_pinned_revision;
  Alcotest.(check bool) "candidate revision past the base" true
    (o.Fleet.Rollout.o_cand_revision > o.Fleet.Rollout.o_base_revision);
  Alcotest.(check int) "three rungs gated" 3
    (List.length o.Fleet.Rollout.o_gates);
  List.iter
    (fun (_, checks) ->
      Alcotest.(check bool) "every gate check passed" true
        (List.for_all (fun g -> g.Fleet.Rollout.g_pass) checks))
    o.Fleet.Rollout.o_gates;
  (match (o.Fleet.Rollout.o_shadow, o.Fleet.Rollout.o_canary) with
  | Some sh, Some ca ->
    Alcotest.(check int) "shadow phase: no looser verdicts" 0
      sh.Fleet.Rollout.ph_looser;
    Alcotest.(check int) "canary phase: no failed VMs" 0
      ca.Fleet.Rollout.ph_failed_vms;
    Alcotest.(check int) "canary phase: no parameter anomalies" 0
      ca.Fleet.Rollout.ph_param_anomalies
  | _ -> Alcotest.fail "both fleet phases must have run");
  (* The equivalent candidate's diff is empty — promotion was evidence,
     not luck. *)
  (match o.Fleet.Rollout.o_diff with
  | Some d ->
    Alcotest.(check bool) "diff is empty" true (Sedspec.Evolve.is_empty d)
  | None -> Alcotest.fail "diff must be present");
  Fleet.Rollout.reset_latches ()

let test_budget_window () =
  let b = Governor.Budget.create ~window:3 in
  Alcotest.(check int) "empty" 0 (Governor.Budget.sum b);
  Governor.Budget.observe b 2;
  Governor.Budget.observe b 3;
  Governor.Budget.observe b 4;
  Alcotest.(check int) "full window" 9 (Governor.Budget.sum b);
  Governor.Budget.observe b 1;
  Alcotest.(check int) "oldest evicted" 8 (Governor.Budget.sum b);
  Governor.Budget.clear b;
  Alcotest.(check int) "cleared" 0 (Governor.Budget.sum b);
  Alcotest.(check int) "window length" 3 (Governor.Budget.window b);
  Alcotest.check_raises "window >= 1"
    (Invalid_argument "Governor.Budget: window must be >= 1") (fun () ->
      ignore (Governor.Budget.create ~window:0));
  Alcotest.check_raises "burn >= 0"
    (Invalid_argument "Governor.Budget.observe: burn must be >= 0") (fun () ->
      Governor.Budget.observe b (-1))

let test_fleet_isolation_smoke () =
  let r =
    Faultinj.Campaign.fleet_isolation
      {
        Faultinj.Campaign.fl_vms = 4;
        fl_faulty = 2;
        fl_ticks = 4;
        fl_seed = 3L;
        fl_jobs = 2;
        fl_devices = [ "fdc"; "sdhci" ];
      }
  in
  Alcotest.(check bool) "faults fired" true (r.Faultinj.Campaign.fl_fired > 0);
  Alcotest.(check (list int)) "no clean-VM divergence" []
    r.Faultinj.Campaign.fl_clean_divergent;
  Alcotest.(check bool) "jobs-independent under faults" false
    r.Faultinj.Campaign.fl_jobs_divergence;
  Alcotest.(check bool) "campaign verdict" true
    (Faultinj.Campaign.fleet_passed r)

let () =
  Alcotest.run "fleet"
    [
      ( "governor",
        [
          Alcotest.test_case "degrades and restores" `Quick
            test_governor_degrades_and_restores;
          Alcotest.test_case "hysteresis never oscillates on a boundary" `Quick
            test_governor_hysteresis_boundary;
          Alcotest.test_case "preconditions raise" `Quick
            test_governor_preconditions;
          Alcotest.test_case "checker config keeps the parameter check" `Quick
            test_checker_config_keeps_parameter_check;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "parameter check halts in every rung" `Slow
            test_invariant_parameter_check_halts_in_every_state;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "overrun contained, never a hang" `Quick
            test_deadline_overrun_contained;
          Alcotest.test_case "both engines overrun identically" `Quick
            test_deadline_engines_agree;
        ] );
      ( "vm",
        [
          Alcotest.test_case "spec retry with fallback" `Slow
            test_vm_spec_retry_and_fallback;
        ] );
      ( "arena",
        [
          Alcotest.test_case "one arena across VMs and domains" `Slow
            test_arena_shared_across_vms_and_domains;
          Alcotest.test_case "failed build never evicts a healthy arena" `Slow
            test_spec_cache_failed_build_keeps_healthy_arena;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "report independent of jobs" `Slow
            test_fleet_jobs_independent;
          Alcotest.test_case "bulkhead isolation under faults" `Slow
            test_fleet_isolation_smoke;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "equivalent candidate fully agrees" `Slow
            test_shadow_full_agreement;
          Alcotest.test_case "shadow report independent of jobs" `Slow
            test_shadow_jobs_independent;
          Alcotest.test_case "budget window semantics" `Quick
            test_budget_window;
        ] );
      ( "rollout",
        [
          Alcotest.test_case "catalogue gate covers GROWN-* entries" `Slow
            test_rollout_gate_covers_grown_cves;
          Alcotest.test_case "poisoned candidate rolled back and latched"
            `Slow test_rollout_poisoned_rolled_back_and_latched;
          Alcotest.test_case "equivalent retrained candidate promoted" `Slow
            test_rollout_equivalent_retrained_promoted;
        ] );
    ]
