(* Tests for the coverage-guided differential fuzzer.

   The expensive properties are exercised on the FDC only (one spec
   build, shared via the cache); serialization and recording cover all
   five devices because they need no specification at all. *)

module Input = Fuzz.Input
module Exec = Fuzz.Exec
module Loop = Fuzz.Loop
module C = Sedspec.Checker

let devices = [ "fdc"; "sdhci"; "ehci"; "pcnet"; "scsi" ]

(* Seed corpora are recorded once and shared across tests. *)
let corpus = Hashtbl.create 8

let seed_corpus device =
  match Hashtbl.find_opt corpus device with
  | Some c -> c
  | None ->
    let c = Input.seed_corpus ~device in
    Hashtbl.replace corpus device c;
    c

(* --- Serialization ------------------------------------------------------ *)

let input_equal (a : Input.t) (b : Input.t) =
  a.device = b.device
  && Devices.Qemu_version.to_string a.version
     = Devices.Qemu_version.to_string b.version
  && a.origin = b.origin && a.steps = b.steps

let test_seed_corpus_roundtrip () =
  List.iter
    (fun device ->
      let seeds = seed_corpus device in
      Alcotest.(check bool)
        (device ^ " has seeds") true
        (List.length seeds >= 3);
      match Input.corpus_of_string (Input.corpus_to_string seeds) with
      | Error msg -> Alcotest.fail (device ^ ": reload failed: " ^ msg)
      | Ok seeds' ->
        Alcotest.(check int)
          (device ^ " count") (List.length seeds) (List.length seeds');
        List.iter2
          (fun a b ->
            Alcotest.(check bool) (device ^ " input roundtrips") true
              (input_equal a b))
          seeds seeds')
    devices

let test_roundtrip_int64_extremes () =
  (* Values are serialized as unsigned hex, so the full 64-bit range —
     including negative int64 bit patterns — must survive. *)
  let input =
    {
      Input.device = "fdc";
      version = Devices.Qemu_version.v 2 3 0;
      origin = Input.Mutant;
      steps =
        [|
          Input.Req
            {
              handler = "h";
              params =
                [ ("a", -1L); ("b", Int64.min_int); ("c", 0L); ("d", 42L) ];
            };
          Input.Guest_write { addr = 0xFFFFFFFFFFFFFFF0L; data = "\x00\xff*" };
        |];
    }
  in
  match Input.corpus_of_string (Input.to_string input) with
  | Error msg -> Alcotest.fail ("reload failed: " ^ msg)
  | Ok [ input' ] ->
    Alcotest.(check bool) "extreme values roundtrip" true
      (input_equal input input')
  | Ok _ -> Alcotest.fail "expected exactly one input"

let test_parser_rejects_garbage () =
  let expect_error s =
    match Input.corpus_of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("parsed garbage: " ^ String.escaped s)
  in
  expect_error "input fdc\nend\n";
  expect_error "input fdc 2.3.0 benign\nq bogus\nend\n";
  expect_error "input fdc 2.3.0 benign\nr h a=1\n";
  (* missing end *)
  expect_error "input fdc 2.3.0 sideways\nend\n";
  (* bad origin *)
  Alcotest.(check bool) "empty corpus is fine" true
    (Input.corpus_of_string "" = Ok [])

let test_fault_steps_roundtrip () =
  let input =
    {
      Input.device = "fdc";
      version = Devices.Qemu_version.v 2 3 0;
      origin = Input.Mutant;
      steps =
        [|
          Input.Fault (Input.F_guest_xor 0xDEADBEEFL);
          Input.Fault (Input.F_guest_short 0xA0000L);
          Input.Fault Input.F_guest_clear;
          Input.Fault Input.F_walk_raise;
          Input.Fault (Input.F_walk_delay 1024);
          Input.Fault (Input.F_resp_read 0xFEEDFACEL);
          Input.Fault (Input.F_resp_store (-1L));
          Input.Fault (Input.F_resp_dma (-512));
          Input.Fault (Input.F_resp_irq 32);
          Input.Fault Input.F_resp_clear;
        |];
    }
  in
  match Input.corpus_of_string (Input.to_string input) with
  | Error msg -> Alcotest.fail ("reload failed: " ^ msg)
  | Ok [ input' ] ->
    Alcotest.(check bool) "fault steps roundtrip" true (input_equal input input')
  | Ok _ -> Alcotest.fail "expected exactly one input"

(* qcheck property: [of_string . to_string] is the identity over the
   whole corpus grammar — request, guest-write and fault lines alike —
   with values drawn from a u64-boundary-heavy distribution (the
   serializer prints unsigned hex, so negative int64 bit patterns are
   the interesting corner) and payloads including the empty string
   (which serializes to a two-word [g] line). *)
let corpus_roundtrip_prop =
  let open QCheck in
  let u64 =
    Gen.frequency
      [
        ( 2,
          Gen.oneofl
            [
              0L;
              1L;
              -1L;
              Int64.max_int;
              Int64.min_int;
              0xFFL;
              0xFFFFFFFFL;
              0x100000000L;
              0x7FFFFFFFFFFFFFFEL;
            ] );
        (2, Gen.map Int64.of_int (Gen.int_bound 0xFFFF));
        (1, Gen.map Int64.of_int Gen.int);
      ]
  in
  let ident =
    (* Handler and parameter names: non-empty, no whitespace, '=', ','. *)
    Gen.map
      (fun (c, s) -> String.make 1 c ^ s)
      (Gen.pair
         (Gen.char_range 'a' 'z')
         (Gen.string_size ~gen:(Gen.char_range 'a' 'z') (Gen.int_bound 6)))
  in
  let gen_step =
    Gen.frequency
      [
        ( 4,
          Gen.map2
            (fun handler params -> Input.Req { handler; params })
            ident
            (Gen.list_size (Gen.int_bound 4) (Gen.pair ident u64)) );
        ( 3,
          Gen.map2
            (fun addr data -> Input.Guest_write { addr; data })
            u64
            (Gen.string_size (Gen.int_bound 24)) );
        (1, Gen.map (fun m -> Input.Fault (Input.F_guest_xor m)) u64);
        (1, Gen.map (fun l -> Input.Fault (Input.F_guest_short l)) u64);
        (1, Gen.return (Input.Fault Input.F_guest_clear));
        (1, Gen.return (Input.Fault Input.F_walk_raise));
        ( 1,
          Gen.map
            (fun s -> Input.Fault (Input.F_walk_delay s))
            (Gen.int_bound 10_000) );
        (1, Gen.map (fun m -> Input.Fault (Input.F_resp_read m)) u64);
        (1, Gen.map (fun m -> Input.Fault (Input.F_resp_store m)) u64);
        ( 1,
          (* DMA deltas are signed decimals on the wire. *)
          Gen.map
            (fun d -> Input.Fault (Input.F_resp_dma d))
            (Gen.int_range (-8192) 8192) );
        (1, Gen.map (fun b -> Input.Fault (Input.F_resp_irq b)) (Gen.int_bound 64));
        (1, Gen.return (Input.Fault Input.F_resp_clear));
      ]
  in
  let gen_input =
    Gen.map2
      (fun steps origin ->
        {
          Input.device = "fdc";
          version = Devices.Qemu_version.v 2 3 0;
          origin;
          steps = Array.of_list steps;
        })
      (Gen.list_size (Gen.int_bound 20) gen_step)
      (Gen.oneofl
         [ Input.Benign; Input.Mutant; Input.Attack "CVE-2015-3456" ])
  in
  QCheck.Test.make ~name:"corpus grammar roundtrips" ~count:500
    (QCheck.make
       ~print:(fun i -> Input.to_string i)
       gen_input)
    (fun input ->
      match Input.corpus_of_string (Input.to_string input) with
      | Ok [ input' ] -> input_equal input input'
      | Ok _ -> QCheck.Test.fail_report "expected exactly one input"
      | Error msg -> QCheck.Test.fail_reportf "reload failed: %s" msg)

(* Scheduled faults must not break the differential oracle: guest
   corruption is a pure function of the address and walk faults fire
   before engine dispatch, so both engines observe identical effects —
   including a contained walk-raise, which shows up as the same anomaly
   and halt on both sides. *)
let test_fault_steps_no_divergence () =
  let seed = List.hd (seed_corpus "fdc") in
  let prefix =
    Array.sub seed.Input.steps 0 (min 12 (Array.length seed.Input.steps))
  in
  let steps =
    Array.concat
      [
        [|
          Input.Fault (Input.F_walk_delay 64);
          Input.Fault (Input.F_guest_xor 0xDEADBEEFL);
        |];
        prefix;
        [| Input.Fault Input.F_guest_clear; Input.Fault Input.F_walk_raise |];
        prefix;
        (* Response-direction faults are interp effects, visible to both
           engines identically. *)
        [|
          Input.Fault (Input.F_resp_read 0x5A5A5A5AL);
          Input.Fault (Input.F_resp_dma (-1));
          Input.Fault (Input.F_resp_irq 3);
        |];
        prefix;
        [| Input.Fault Input.F_resp_clear |];
        prefix;
      ]
  in
  let input = { seed with Input.origin = Input.Mutant; steps } in
  let o = Exec.evaluate input in
  List.iter
    (fun (d : Exec.divergence) ->
      Printf.eprintf "divergence %s/%s: %s\n" d.Exec.d_profile d.Exec.d_field
        d.Exec.d_detail)
    o.Exec.divergences;
  Alcotest.(check int) "no divergences" 0 (List.length o.Exec.divergences);
  Alcotest.(check bool) "no crash" true (o.Exec.crashed = None)

(* --- ddmin (pure) ------------------------------------------------------- *)

let test_ddmin_minimises () =
  (* Interesting = contains both 3 and 17: ddmin must find the exact
     two-element subsequence, preserving order. *)
  let steps = Array.init 20 Fun.id in
  let test arr = Array.mem 3 arr && Array.mem 17 arr in
  let out = Loop.ddmin ~test steps in
  Alcotest.(check (array int)) "minimal subsequence" [| 3; 17 |] out

let test_ddmin_respects_budget () =
  let evals = ref 0 in
  let steps = Array.init 64 Fun.id in
  let test arr =
    incr evals;
    Array.mem 63 arr
  in
  ignore (Loop.ddmin ~max_evals:5 ~test steps);
  Alcotest.(check bool) "stopped at the eval budget" true (!evals <= 5)

let test_ddmin_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||]
    (Loop.ddmin ~test:(fun _ -> true) [||]);
  Alcotest.(check (array int)) "singleton kept" [| 9 |]
    (Loop.ddmin ~test:(fun a -> Array.mem 9 a) [| 9 |])

(* --- The loop on FDC ---------------------------------------------------- *)

let fdc_options ~budget ~seed =
  { (Loop.default_options ~device:"fdc") with Loop.budget; seed }

let test_benign_fuzz_no_divergence_and_growth () =
  let r = Loop.run { (fdc_options ~budget:200 ~seed:42L) with Loop.jobs = 2 } in
  Alcotest.(check int) "no divergent inputs" 0 r.Loop.r_divergent_inputs;
  Alcotest.(check int) "no crashes" 0 r.Loop.r_crashes;
  Alcotest.(check int) "executed the budget" 200 r.Loop.r_executed;
  Alcotest.(check bool) "coverage grew over the seeds" true
    (r.Loop.r_nodes + r.Loop.r_edges > r.Loop.r_seed_nodes + r.Loop.r_seed_edges);
  Alcotest.(check bool) "corpus retained the seeds" true
    (List.length r.Loop.r_corpus >= r.Loop.r_seed_corpus)

let test_jobs_determinism () =
  (* The whole observable output — report JSON and corpus text — must be
     bit-identical regardless of the domain count. *)
  let run jobs =
    let r = Loop.run { (fdc_options ~budget:64 ~seed:7L) with Loop.jobs } in
    (Loop.report_to_string r, Input.corpus_to_string r.Loop.r_corpus)
  in
  let report1, corpus1 = run 1 in
  let report4, corpus4 = run 4 in
  Alcotest.(check string) "report jobs 1 = jobs 4" report1 report4;
  Alcotest.(check string) "corpus jobs 1 = jobs 4" corpus1 corpus4

(* A deliberately broken right-hand checker: the interpreted engine with a
   tiny walk budget trips the cycle-budget anomaly on walks the production
   configuration completes.  The differential oracle must catch it and the
   shrinker must reduce the reproducer to a handful of steps. *)
let broken_profile ~walk_limit =
  {
    Exec.pname = "seeded-bug";
    left = C.default_config;
    right =
      {
        C.default_config with
        C.engine = C.Interpreted;
        walk_limit;
      };
    left_source = Exec.Trained;
    right_source = Exec.Trained;
    left_version = None;
    right_version = None;
    lenient = false;
  }

let test_seeded_divergence_found_and_shrunk () =
  let opts =
    {
      (fdc_options ~budget:64 ~seed:3L) with
      Loop.profiles = [ broken_profile ~walk_limit:4 ];
      jobs = 2;
    }
  in
  let r = Loop.run opts in
  Alcotest.(check bool) "divergence detected" true
    (r.Loop.r_divergent_inputs > 0);
  Alcotest.(check bool) "finding reported" true (r.Loop.r_findings <> []);
  List.iter
    (fun (f : Loop.finding) ->
      Alcotest.(check string) "profile" "seeded-bug" f.Loop.f_profile;
      Alcotest.(check bool)
        (Printf.sprintf "reproducer shrunk to %d steps (<= 8)"
           (Array.length f.Loop.f_input.Input.steps))
        true
        (Array.length f.Loop.f_input.Input.steps <= 8);
      (* The minimized reproducer still reproduces. *)
      let o = Exec.evaluate ~profiles:opts.Loop.profiles f.Loop.f_input in
      Alcotest.(check bool) "reproducer re-diverges" true
        (List.exists
           (fun (d : Exec.divergence) ->
             d.Exec.d_profile = "seeded-bug" && d.Exec.d_field = f.Loop.f_field)
           o.Exec.divergences))
    r.Loop.r_findings

(* ddmin fidelity under *several* simultaneously-diverging keys: the
   shrinker's interestingness predicate must target the finding's own
   (profile, field), not "any divergence" — otherwise a shrink can slide
   onto a different oracle field (or a looser profile) with a smaller
   core and report a witness that no longer reproduces what it claims.
   Two broken profiles with different walk budgets diverge on different
   input sets; every reported witness must re-diverge on exactly its own
   key, and must never exceed the recorded original length. *)
let test_ddmin_shrinks_preserve_their_finding () =
  let profiles =
    [
      { (broken_profile ~walk_limit:4) with Exec.pname = "tight" };
      { (broken_profile ~walk_limit:6) with Exec.pname = "loose" };
    ]
  in
  let opts =
    { (fdc_options ~budget:64 ~seed:3L) with Loop.profiles; jobs = 2 }
  in
  let r = Loop.run opts in
  Alcotest.(check bool) "findings reported" true (r.Loop.r_findings <> []);
  List.iter
    (fun (f : Loop.finding) ->
      Alcotest.(check bool)
        (Printf.sprintf "shrink (%d steps) <= original (%d steps)"
           (Array.length f.Loop.f_input.Input.steps)
           f.Loop.f_original_len)
        true
        (Array.length f.Loop.f_input.Input.steps <= f.Loop.f_original_len);
      let o = Exec.evaluate ~profiles f.Loop.f_input in
      Alcotest.(check bool)
        (Printf.sprintf "witness re-diverges on its own key (%s, %s)"
           f.Loop.f_profile f.Loop.f_field)
        true
        (List.exists
           (fun (d : Exec.divergence) ->
             d.Exec.d_profile = f.Loop.f_profile
             && d.Exec.d_field = f.Loop.f_field)
           o.Exec.divergences))
    r.Loop.r_findings

let test_fp_candidate_reported () =
  (* A benign-origin input the spec was never trained on: the checker
     flags it, and because the origin is benign the report must surface
     it as a false-positive candidate rather than a plain anomaly. *)
  let rare =
    {
      Input.device = "fdc";
      version = (let w = Workload.Samples.find "fdc" in
                 let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
                 W.paper_version);
      origin = Input.Benign;
      steps =
        [|
          (* DUMPREG (0x0E) is a legal FDC command the benign trainer
             never issues. *)
          Input.Req
            {
              handler = "write";
              params =
                [ ("addr", 0x3F5L); ("offset", 5L); ("size", 1L); ("data", 0x0EL) ];
            };
        |];
    }
  in
  let r =
    Loop.run
      { (fdc_options ~budget:0 ~seed:1L) with Loop.extra_seeds = [ rare ] }
  in
  Alcotest.(check bool) "fp candidate surfaced" true (r.Loop.r_fp_candidates <> [])

(* --- Minimized-spec oracle ---------------------------------------------- *)

(* Property: for random fuzzer inputs, the minimized spec produces
   bit-identical verdicts to the trained spec — same I/O results,
   anomalies, warnings, halts and shadow bytes — in both engines and
   both working modes ([Exec.minimized_profiles] covers the 2x2).  Each
   trial drives a fresh fuzz generation from a random master seed, so
   every run explores different mutants. *)
let minimized_equivalence_prop =
  QCheck.Test.make ~name:"minimized spec is verdict-equivalent under fuzzing"
    ~count:3 QCheck.int64 (fun seed ->
      let r =
        Loop.run
          {
            (fdc_options ~budget:48 ~seed) with
            Loop.profiles = Exec.minimized_profiles;
          }
      in
      if r.Loop.r_divergent_inputs <> 0 || r.Loop.r_crashes <> 0 then
        QCheck.Test.fail_reportf
          "seed %Ld: %d divergent inputs, %d crashes; first: %s" seed
          r.Loop.r_divergent_inputs r.Loop.r_crashes
          (match r.Loop.r_findings with
          | f :: _ ->
            Printf.sprintf "[%s/%s] %s" f.Loop.f_profile f.Loop.f_field
              f.Loop.f_detail
          | [] -> "-")
      else true)

(* One deterministic pass per device with the full oracle stack (engine
   differential + minimized differential) — the cross-device smoke the
   qcheck property above can't afford. *)
let test_minimized_oracle_all_devices () =
  List.iter
    (fun device ->
      let r =
        Loop.run
          {
            (Loop.default_options ~device) with
            Loop.budget = 24;
            seed = 5L;
            profiles = Exec.all_profiles;
          }
      in
      Alcotest.(check int) (device ^ ": no divergences") 0
        r.Loop.r_divergent_inputs;
      Alcotest.(check int) (device ^ ": no crashes") 0 r.Loop.r_crashes)
    devices

(* --- Cross-version deviation locator ------------------------------------ *)

module Locate = Fuzz.Locate
module Delta = Fuzz.Delta

(* Acceptance: on the scsi catalogue (three CVEs, three distinct version
   pairs) a fixed-seed, small-budget locate run must localize every
   patch — the statically changed block set is contained in the
   dynamically localized one — and carry at least one minimized witness
   at <= 25% of its original sequence length per CVE. *)
let test_locate_localizes_and_shrinks () =
  let opts =
    {
      Locate.default_options with
      Locate.device = Some "scsi";
      budget = 8;
      jobs = 2;
    }
  in
  let r = Locate.run opts in
  Alcotest.(check int) "three scsi CVEs" 3 (List.length r.Delta.deltas);
  List.iter
    (fun (d : Delta.cve_delta) ->
      Alcotest.(check bool) (d.Delta.cd_cve ^ ": static diff non-empty") true
        (d.Delta.cd_static <> []);
      Alcotest.(check bool) (d.Delta.cd_cve ^ ": localized") true
        d.Delta.cd_localized;
      Alcotest.(check bool) (d.Delta.cd_cve ^ ": has witnesses") true
        (d.Delta.cd_witnesses <> []);
      let best =
        List.fold_left
          (fun acc (w : Delta.witness) ->
            min acc
              (float_of_int (Array.length w.Delta.w_input.Input.steps)
              /. float_of_int (max 1 w.Delta.w_original_len)))
          infinity d.Delta.cd_witnesses
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: best shrink ratio %.3f <= 0.25" d.Delta.cd_cve
           best)
        true (best <= 0.25))
    r.Delta.deltas

(* The delta report — JSON and pretty table — must be bit-identical for
   any [--jobs], like every other fuzzer artifact. *)
let test_locate_jobs_determinism () =
  let base =
    { Locate.default_options with Locate.cve = Some "CVE-2015-5158"; budget = 8 }
  in
  let render jobs =
    let r = Locate.run { base with Locate.jobs } in
    (Delta.to_string r, Format.asprintf "%a" Delta.pp r)
  in
  let json1, pp1 = render 1 in
  let json4, pp4 = render 4 in
  Alcotest.(check string) "json jobs 1 = jobs 4" json1 json4;
  Alcotest.(check string) "table jobs 1 = jobs 4" pp1 pp4

let test_report_json_shape () =
  let r = Loop.run (fdc_options ~budget:16 ~seed:11L) in
  let json = Loop.report_to_string r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report mentions " ^ needle) true
        (let n = String.length needle and m = String.length json in
         let rec go i =
           i + n <= m && (String.sub json i n = needle || go (i + 1))
         in
         go 0))
    [
      "\"device\"";
      "\"seed\"";
      "\"executed\"";
      "\"coverage\"";
      "\"new_nodes\"";
      "\"new_edges\"";
      "\"divergences\"";
      "\"fp_candidates\"";
    ]

let () =
  Alcotest.run "fuzz"
    [
      ( "input",
        [
          Alcotest.test_case "seed corpus roundtrips (all devices)" `Quick
            test_seed_corpus_roundtrip;
          Alcotest.test_case "int64 extremes roundtrip" `Quick
            test_roundtrip_int64_extremes;
          Alcotest.test_case "parser rejects garbage" `Quick
            test_parser_rejects_garbage;
          Alcotest.test_case "fault steps roundtrip" `Quick
            test_fault_steps_roundtrip;
          QCheck_alcotest.to_alcotest corpus_roundtrip_prop;
          Alcotest.test_case "fault steps keep the oracle green" `Quick
            test_fault_steps_no_divergence;
        ] );
      ( "ddmin",
        [
          Alcotest.test_case "minimises to the core" `Quick test_ddmin_minimises;
          Alcotest.test_case "respects the eval budget" `Quick
            test_ddmin_respects_budget;
          Alcotest.test_case "empty and singleton" `Quick
            test_ddmin_empty_and_singleton;
        ] );
      ( "loop",
        [
          Alcotest.test_case "benign fuzz: clean and growing" `Quick
            test_benign_fuzz_no_divergence_and_growth;
          Alcotest.test_case "jobs 1 = jobs 4 bit-identical" `Quick
            test_jobs_determinism;
          Alcotest.test_case "seeded divergence found and shrunk" `Quick
            test_seeded_divergence_found_and_shrunk;
          Alcotest.test_case "shrinks preserve their own finding" `Quick
            test_ddmin_shrinks_preserve_their_finding;
          Alcotest.test_case "fp candidate reported" `Quick
            test_fp_candidate_reported;
          Alcotest.test_case "report json shape" `Quick test_report_json_shape;
        ] );
      ( "locate",
        [
          Alcotest.test_case "scsi catalogue localizes, witnesses shrink" `Slow
            test_locate_localizes_and_shrinks;
          Alcotest.test_case "delta report jobs 1 = jobs 4 bit-identical" `Slow
            test_locate_jobs_determinism;
        ] );
      ( "minimized-oracle",
        [
          QCheck_alcotest.to_alcotest minimized_equivalence_prop;
          Alcotest.test_case "all devices, full oracle" `Slow
            test_minimized_oracle_all_devices;
        ] );
    ]
