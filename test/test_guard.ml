(* Tests for the guest-side validator (lib/guard): response-profile
   training determinism, transparency on the benign corpus, detection of
   envelope / storm departures injected at the interpreter's response
   seam, fail-closed containment of internal validator faults, and the
   hostile campaign smoke (with worker-count bit-identity) plus the
   guarded fleet-isolation run. *)

module Prng = Sedspec_util.Prng
module Resp = Guard.Resp
module Validator = Guard.Validator
module Campaign = Faultinj.Campaign

(* Spec builds are the expensive part; keep them small and shared via
   the single-flight cache. *)
let () = Metrics.Spec_cache.training_cases := 12

let dev = "sdhci"

module W = (val Workload.Samples.find dev : Workload.Samples.DEVICE_WORKLOAD)

let train_profile () =
  let m = W.make_machine ~vmexit_cost:0 W.paper_version in
  Resp.train m ~device:dev (W.trainer ~cases:8)

let test_training_deterministic () =
  let p1 = train_profile () and p2 = train_profile () in
  Alcotest.(check bool) "same corpus, same profile" true (p1 = p2);
  Alcotest.(check bool) "profile saw interactions" true
    (p1.Resp.trained_interactions > 0);
  Alcotest.(check bool) "some start kind is allowed" true
    (Array.exists Fun.id p1.Resp.starts)

let test_below_mask_envelope () =
  Alcotest.(check int64) "zero smears to zero" 0L (Resp.below_mask 0L);
  Alcotest.(check int64) "one bit smears down" 0xFFL (Resp.below_mask 0x80L);
  Alcotest.(check int64) "mid pattern" 0x7FFFL (Resp.below_mask 0x4321L);
  Alcotest.(check int64) "top bit covers everything" (-1L)
    (Resp.below_mask Int64.min_int)

let test_benign_transparent () =
  (* Profiles generalise by construction: re-running the corpus that
     trained them must not trip a single verdict. *)
  let profile = train_profile () in
  let m = W.make_machine ~vmexit_cost:0 W.paper_version in
  let v = Validator.attach m ~device:dev ~profile in
  let trainer = W.trainer ~cases:8 in
  for i = 0 to 7 do
    trainer.Sedspec.Pipeline.run_case m i
  done;
  let anoms = Validator.anomalies v in
  Validator.detach v;
  Alcotest.(check int) "no anomalies on the training corpus" 0
    (List.length anoms);
  Alcotest.(check bool) "interactions were observed" true
    (Validator.interactions v > 0)

(* Arm a response fault at the interpreter seam, soak briefly, and
   return the violations the validator recorded.  Verdicts may halt the
   machine mid-soak; that is containment working, not a test failure. *)
let violations_under fault =
  let profile = train_profile () in
  let m = W.make_machine ~vmexit_cost:0 W.paper_version in
  let v = Validator.attach m ~device:dev ~profile in
  Interp.set_response_fault (Vmm.Machine.interp_of m dev) (Some fault);
  let rng = Prng.create 0xD1CEL in
  (try
     W.soak_case ~mode:Workload.Samples.Sequential ~rng ~rare_prob:0.0 ~ops:6 m
   with _ -> ());
  Interp.set_response_fault (Vmm.Machine.interp_of m dev) None;
  let anoms = Validator.anomalies v in
  Validator.detach v;
  List.map (fun (a : Validator.anomaly) -> a.violation) anoms

let test_detects_corrupted_reads () =
  let vs =
    violations_under
      {
        Interp.no_response_fault with
        rf_read = Some (fun v -> Int64.logor v Int64.min_int);
      }
  in
  Alcotest.(check bool) "envelope violation raised" true
    (List.mem Validator.V_envelope vs)

let test_detects_irq_storm () =
  let vs =
    violations_under { Interp.no_response_fault with rf_irq_burst = 64 }
  in
  Alcotest.(check bool) "storm violation raised" true
    (List.exists
       (fun v -> v = Validator.V_irq_storm || v = Validator.V_event_storm)
       vs)

let test_fail_closed_containment () =
  (* An internal validator fault must never escape: the hook's exception
     is contained, surfaces as V_internal, and the checker-anomaly
     adapter renders it on the Internal_error diagnostic channel. *)
  let profile = train_profile () in
  let m = W.make_machine ~vmexit_cost:0 W.paper_version in
  let v = Validator.attach m ~device:dev ~profile in
  Validator.set_fault_hook v (Some (fun () -> failwith "injected"));
  let rng = Prng.create 0xFA117L in
  (try
     W.soak_case ~mode:Workload.Samples.Sequential ~rng ~rare_prob:0.0 ~ops:4 m
   with _ -> ());
  Alcotest.(check bool) "internal errors counted" true
    (Validator.internal_errors v > 0);
  let anoms = Validator.drain_as_checker_anomalies v in
  Validator.detach v;
  Alcotest.(check bool) "surfaced as anomalies" true (anoms <> []);
  List.iter
    (fun (a : Sedspec.Checker.anomaly) ->
      Alcotest.(check bool) "internal-error strategy" true
        (a.strategy = Sedspec.Checker.Internal_error);
      Alcotest.(check bool) "detail tagged guard:" true
        (String.length a.detail >= 7 && String.sub a.detail 0 7 = "guard: "))
    anoms

let test_reset_clears_state () =
  let profile = train_profile () in
  let m = W.make_machine ~vmexit_cost:0 W.paper_version in
  let v = Validator.attach m ~device:dev ~profile in
  Validator.set_fault_hook v (Some (fun () -> failwith "injected"));
  let rng = Prng.create 3L in
  (try
     W.soak_case ~mode:Workload.Samples.Sequential ~rng ~rare_prob:0.0 ~ops:3 m
   with _ -> ());
  Validator.reset v;
  Alcotest.(check int) "anomalies cleared" 0
    (List.length (Validator.anomalies v));
  Alcotest.(check int) "internal errors cleared" 0 (Validator.internal_errors v);
  (* The fault hook is cleared too: a post-reset soak stays clean. *)
  (try
     W.soak_case ~mode:Workload.Samples.Sequential ~rng ~rare_prob:0.0 ~ops:3 m
   with _ -> ());
  Alcotest.(check int) "no internal errors after reset" 0
    (Validator.internal_errors v);
  Validator.detach v

let hostile_opts jobs =
  {
    Campaign.h_devices = [ "fdc" ];
    h_plans_per_combo = 3;
    h_cases_per_plan = 1;
    h_ops_per_case = 3;
    h_min_injected = 1;
    h_seed = 5L;
    h_jobs = jobs;
  }

let hostile_smoke = lazy (Campaign.run_hostile (hostile_opts 1))

let test_hostile_campaign_smoke () =
  let r = Lazy.force hostile_smoke in
  let t = Campaign.hostile_totals r in
  Alcotest.(check bool) "corruptions injected" true (t.Campaign.hc_injected > 0);
  Alcotest.(check int) "no escaped exceptions" 0 t.Campaign.hc_escaped;
  Alcotest.(check int) "no silent fail-opens" 0 t.Campaign.hc_fail_open;
  Alcotest.(check bool) "verdict passes" true (Campaign.hostile_passed r);
  Alcotest.(check int) "four combos for one device" 4
    (List.length r.Campaign.h_combos)

let test_hostile_jobs_bit_identical () =
  let render r = Sedspec_util.Json.to_string (Campaign.hostile_report_to_json r) in
  let r1 = render (Lazy.force hostile_smoke) in
  let r2 = render (Campaign.run_hostile (hostile_opts 2)) in
  Alcotest.(check string) "jobs 1 = jobs 2" r1 r2

let test_hostile_isolation () =
  let r =
    Campaign.hostile_isolation
      {
        Campaign.fl_vms = 3;
        fl_faulty = 1;
        fl_ticks = 4;
        fl_seed = 2L;
        fl_jobs = 1;
        fl_devices = [ "sdhci" ];
      }
  in
  Alcotest.(check bool) "faults fired" true (r.Campaign.fl_fired > 0);
  Alcotest.(check (list int)) "clean neighbours byte-identical" []
    r.Campaign.fl_clean_divergent;
  Alcotest.(check bool) "verdict passes" true (Campaign.fleet_passed r)

let test_cache_fail_closed_default () =
  (* Spec_cache.guard_profile's fail-closed discipline: an untrainable
     (device, version) pair gets the all-deny profile — guarded strictly
     rather than not at all — and the substitution is cached like a real
     profile, so waiters and repeat callers observe it without
     re-raising. *)
  let module Broken = struct
    let device_name = "sdhci(untrainable)"
    let paper_version = W.paper_version
    let make_machine = W.make_machine

    let trainer ~cases =
      let t = W.trainer ~cases in
      {
        t with
        Sedspec.Pipeline.run_case =
          (fun _ _ -> failwith "benign corpus unavailable");
      }

    let soak_case = W.soak_case
    let ops_per_hour = W.ops_per_hour
  end in
  let before = Metrics.Spec_cache.guard_fail_closed () in
  let builds_before = Metrics.Spec_cache.guard_builds () in
  let p = Metrics.Spec_cache.guard_profile (module Broken) W.paper_version in
  Alcotest.(check bool) "substituted profile is fail-closed" true
    (Resp.is_fail_closed p);
  Alcotest.(check int) "substitution counted" (before + 1)
    (Metrics.Spec_cache.guard_fail_closed ());
  Alcotest.(check int) "no successful build counted" builds_before
    (Metrics.Spec_cache.guard_builds ());
  (* Cached: asking again serves the substitution without retraining. *)
  let p' = Metrics.Spec_cache.guard_profile (module Broken) W.paper_version in
  Alcotest.(check bool) "substitution is cached" true (p == p');
  Alcotest.(check int) "no second substitution" (before + 1)
    (Metrics.Spec_cache.guard_fail_closed ());
  (* A trainable pair is unaffected: real training still lands. *)
  let ok =
    Metrics.Spec_cache.guard_profile
      (module W : Workload.Samples.DEVICE_WORKLOAD)
      W.paper_version
  in
  Alcotest.(check bool) "trainable pair gets a real profile" false
    (Resp.is_fail_closed ok)

let () =
  Alcotest.run "guard"
    [
      ( "profile",
        [
          Alcotest.test_case "training is deterministic" `Quick
            test_training_deterministic;
          Alcotest.test_case "below_mask envelope" `Quick
            test_below_mask_envelope;
          Alcotest.test_case "untrainable pair fails closed" `Quick
            test_cache_fail_closed_default;
        ] );
      ( "validator",
        [
          Alcotest.test_case "transparent on benign corpus" `Quick
            test_benign_transparent;
          Alcotest.test_case "detects corrupted read-returns" `Quick
            test_detects_corrupted_reads;
          Alcotest.test_case "detects IRQ storms" `Quick test_detects_irq_storm;
          Alcotest.test_case "contains internal faults fail-closed" `Quick
            test_fail_closed_containment;
          Alcotest.test_case "reset clears state and hook" `Quick
            test_reset_clears_state;
        ] );
      ( "hostile",
        [
          Alcotest.test_case "campaign smoke passes" `Quick
            test_hostile_campaign_smoke;
          Alcotest.test_case "jobs 1 = jobs 2 bit-identical" `Quick
            test_hostile_jobs_bit_identical;
          Alcotest.test_case "fleet isolation protects neighbours" `Quick
            test_hostile_isolation;
        ] );
    ]
