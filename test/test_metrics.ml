(* Tests for the experiment harnesses.  The headline test reproduces the
   paper's entire Table III detection matrix. *)

let () = Metrics.Spec_cache.training_cases := 12

let test_case_studies_match_paper () =
  List.iter
    (fun (r : Metrics.Case_study.result) ->
      if not (Metrics.Case_study.matches_expectation r) then
        Alcotest.failf "%s diverges from the paper:@.%s" r.attack.cve
          (Format.asprintf "%a" Metrics.Case_study.pp_result r))
    (Metrics.Case_study.run_all ())

let test_fpr_soak_tracks_rare_probability () =
  let w = Workload.Samples.find "ehci" in
  let r =
    Metrics.Fpr.soak ~seed:3L ~cases_per_hour:30 ~checkpoint_hours:[ 1; 2 ]
      ~rare_prob:0.5 w
  in
  Alcotest.(check int) "total cases" 60 r.total_cases;
  (* With a 50% rare tail roughly half the cases must be flagged. *)
  Alcotest.(check bool) "flagged cases near expectation" true
    (r.fp_cases > 15 && r.fp_cases < 45);
  Alcotest.(check int) "no parameter-check FPs" 0 r.param_check_fps;
  (* Checkpoints accumulate. *)
  match r.checkpoints with
  | [ c1; c2 ] ->
    Alcotest.(check bool) "monotone" true (c2.fp_cases >= c1.fp_cases);
    Alcotest.(check int) "case counts" 30 c1.cases
  | _ -> Alcotest.fail "two checkpoints expected"

let test_fpr_paper_constants () =
  Alcotest.(check bool) "per-device FPR targets" true
    (List.for_all
       (fun d ->
         let f = Metrics.Fpr.paper_fpr d in
         f > 0.0 && f < 0.01)
       [ "fdc"; "ehci"; "pcnet"; "sdhci"; "scsi" ])

let test_coverage_bounds () =
  List.iter
    (fun w ->
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let r = Metrics.Coverage.measure ~seed:11L ~fuzz_cases:20 (module W) in
      Alcotest.(check bool)
        (W.device_name ^ " coverage plausible")
        true
        (r.effective > 0.75 && r.effective <= 1.0);
      Alcotest.(check bool) "fuzz reaches at least training" true (r.fuzz_blocks > 0))
    Workload.Samples.all

let test_perf_sanity () =
  (* Check the harness produces positive, same-order numbers.  Timing on a
     shared machine is noisy, so use a non-trivial volume, keep the best of
     two runs per point, and accept a wide band — this is a smoke test of
     the measurement plumbing, not a performance assertion (the bench does
     those with proper repetition). *)
  let run () =
    Metrics.Perf.storage_sweep ~total_bytes:65536 ~vmexit_cost:5000
      ~device:"scsi" ~write:false ()
  in
  let a = run () and b = run () in
  List.iter2
    (fun (pa : Metrics.Perf.storage_point) (pb : Metrics.Perf.storage_point) ->
      Alcotest.(check bool) "positive times" true
        (pa.base_s > 0.0 && pa.protected_s > 0.0);
      let best = max pa.norm_throughput pb.norm_throughput in
      Alcotest.(check bool) "same order of magnitude" true
        (best > 0.1 && best < 10.0))
    a b

let test_net_harness_sanity () =
  let p = Metrics.Perf.pcnet_bandwidth ~total_bytes:(256 * 1024) ~vmexit_cost:5000
      Metrics.Perf.Udp_up
  in
  Alcotest.(check bool) "bandwidth positive" true
    (p.base_mbps > 0.0 && p.protected_mbps > 0.0);
  let base, prot, _ = Metrics.Perf.pcnet_ping ~count:30 ~vmexit_cost:5000 () in
  Alcotest.(check bool) "ping positive" true (base > 0.0 && prot > 0.0)

let test_baseline_verdict_list () =
  Alcotest.(check int) "five nioh CVEs" 5 (List.length Metrics.Baseline.nioh_cves);
  List.iter
    (fun cve ->
      Alcotest.(check bool) (cve ^ " exists in catalogue") true
        (match Attacks.Attack.find cve with _ -> true | exception Not_found -> false))
    Metrics.Baseline.nioh_cves

let test_spec_cache_single_flight () =
  (* Four domains race on a cold (device, version) key; the mutex +
     single-flight build must hand every caller the same build (an
     unsynchronised cache would build twice and return distinct values,
     or corrupt the table outright). *)
  let w = Workload.Samples.find "sdhci" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let version = Devices.Qemu_version.latest in
  match
    Sedspec_util.Runner.map ~jobs:4
      (fun () -> Metrics.Spec_cache.built (module W) version)
      [ (); (); (); () ]
  with
  | b :: rest ->
    List.iter
      (fun b' -> Alcotest.(check bool) "one build shared by all" true (b == b'))
      rest
  | [] -> assert false

let test_parallel_soak_determinism () =
  (* The tentpole invariant: fanning the per-device soaks out across
     domains changes wall-clock only.  Every field of every result —
     counters, checkpoints, FPR floats — must equal the serial run. *)
  let soak name =
    Metrics.Fpr.soak ~seed:5L ~cases_per_hour:8 ~checkpoint_hours:[ 1; 2 ]
      (Workload.Samples.find name)
  in
  let devices = [ "fdc"; "pcnet"; "ehci" ] in
  let serial = Sedspec_util.Runner.map ~jobs:1 soak devices in
  let parallel = Sedspec_util.Runner.map ~jobs:4 soak devices in
  Alcotest.(check bool) "jobs 1 = jobs 4" true (serial = parallel);
  Alcotest.(check (list string)) "order preserved" devices
    (List.map (fun (r : Metrics.Fpr.result) -> r.device) parallel)

let test_case_studies_parallel_deterministic () =
  let serial = Metrics.Case_study.run_all () in
  let parallel = Metrics.Case_study.run_all ~jobs:4 () in
  List.iter2
    (fun (a : Metrics.Case_study.result) (b : Metrics.Case_study.result) ->
      Alcotest.(check string) "same attack order" a.attack.cve b.attack.cve;
      Alcotest.(check bool) (a.attack.cve ^ " same verdicts") true
        (List.map
           (fun (o : Metrics.Case_study.strategy_outcome) ->
             (o.strategy, o.detected, o.blocked))
           a.per_strategy
        = List.map
            (fun (o : Metrics.Case_study.strategy_outcome) ->
              (o.strategy, o.detected, o.blocked))
            b.per_strategy))
    serial parallel

let test_spec_cache_transient_failure_retries () =
  (* A build that raises must evict its single-flight marker so a retry
     can claim the slot: four domains race on a cold key whose first
     build fails, every caller retries under backoff, and all four must
     end up sharing the one successful build.  The fault hook fires
     exactly twice — the failing build and the succeeding rebuild — so
     a third firing would mean the eviction leaked an extra build. *)
  let w = Workload.Samples.find "pcnet" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let version = Devices.Qemu_version.latest in
  let calls = Atomic.make 0 in
  Metrics.Spec_cache.set_build_fault
    (Some
       (fun device ->
         if device = "pcnet" then
           if Atomic.fetch_and_add calls 1 = 0 then
             failwith "injected transient build failure"));
  Fun.protect
    ~finally:(fun () -> Metrics.Spec_cache.set_build_fault None)
    (fun () ->
      let results =
        Sedspec_util.Runner.map ~jobs:4
          (fun i ->
            Sedspec_util.Backoff.retry ~seed:(Int64.of_int i) ~max_attempts:3
              (fun ~attempt:_ ->
                try Ok (Metrics.Spec_cache.built (module W) version)
                with e -> Error (Printexc.to_string e)))
          [ 0; 1; 2; 3 ]
      in
      let builds =
        List.map
          (function
            | Ok (b, _spent) -> b
            | Error f ->
              Alcotest.failf "caller exhausted retries: %s"
                f.Sedspec_util.Backoff.error)
          results
      in
      (match builds with
      | b :: rest ->
        List.iter
          (fun b' ->
            Alcotest.(check bool) "all callers share the rebuild" true (b == b'))
          rest
      | [] -> assert false);
      Alcotest.(check int) "hook fired for fail + rebuild only" 2
        (Atomic.get calls);
      (* The slot now memoises the successful rebuild. *)
      let again = Metrics.Spec_cache.built (module W) version in
      Alcotest.(check bool) "later call hits the cache" true
        (again == List.hd builds);
      Alcotest.(check int) "no further builds" 2 (Atomic.get calls))

let test_spec_cache_evict_drops_derived () =
  (* Eviction regression: derived entries ("+min", "+retrain:N") go with
     their base, so a stale derivation can never outlive (and silently
     shadow) a superseded base build. *)
  let w = Workload.Samples.find "pcnet" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let version = W.paper_version in
  let vstr = Devices.Qemu_version.to_string version in
  let base = Metrics.Spec_cache.built (module W) version in
  let mini = Metrics.Spec_cache.built_minimized (module W) version in
  let retr = Metrics.Spec_cache.built_retrained (module W) version ~cases:9 in
  let other = Metrics.Spec_cache.built (module W) Devices.Qemu_version.latest in
  let before = Metrics.Spec_cache.builds () in
  let removed = Metrics.Spec_cache.evict ~device:W.device_name ~version:vstr in
  Alcotest.(check bool) "base + both derived entries evicted" true
    (removed >= 3);
  (* Asking for the derivation again rebuilds base AND derivation — two
     fresh single-flight builds, not a stale "+min" over a gone base. *)
  let mini' = Metrics.Spec_cache.built_minimized (module W) version in
  Alcotest.(check int) "re-derive rebuilds base and derivation" (before + 2)
    (Metrics.Spec_cache.builds ());
  Alcotest.(check bool) "derivation is fresh" true (mini' != mini);
  Alcotest.(check bool) "base is fresh" true
    (Metrics.Spec_cache.built (module W) version != base);
  Alcotest.(check bool) "retrained candidate was evicted too" true
    (Metrics.Spec_cache.built_retrained (module W) version ~cases:9 != retr);
  (* Other versions of the same device are untouched by the key match. *)
  Alcotest.(check bool) "other-version entry survives" true
    (Metrics.Spec_cache.built (module W) Devices.Qemu_version.latest == other)

let test_spec_cache_memoises () =
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let b1 = Metrics.Spec_cache.built (module W) W.paper_version in
  let b2 = Metrics.Spec_cache.built (module W) W.paper_version in
  Alcotest.(check bool) "same build returned" true (b1 == b2);
  (* A different version is a different cache entry. *)
  let b3 = Metrics.Spec_cache.built (module W) Devices.Qemu_version.latest in
  Alcotest.(check bool) "different version, different build" true (b1 != b3)

let () =
  Alcotest.run "metrics"
    [
      ( "case-study",
        [
          Alcotest.test_case "Table III matrix reproduces" `Slow
            test_case_studies_match_paper;
        ] );
      ( "fpr",
        [
          Alcotest.test_case "soak tracks rare probability" `Slow
            test_fpr_soak_tracks_rare_probability;
          Alcotest.test_case "paper constants" `Quick test_fpr_paper_constants;
        ] );
      ( "coverage",
        [ Alcotest.test_case "bounds on all devices" `Slow test_coverage_bounds ] );
      ( "perf",
        [
          Alcotest.test_case "storage harness sanity" `Slow test_perf_sanity;
          Alcotest.test_case "network harness sanity" `Slow test_net_harness_sanity;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "baseline catalogue" `Quick test_baseline_verdict_list;
          Alcotest.test_case "spec cache memoises" `Quick test_spec_cache_memoises;
          Alcotest.test_case "spec cache single-flight" `Quick
            test_spec_cache_single_flight;
          Alcotest.test_case "spec cache transient failure retries" `Quick
            test_spec_cache_transient_failure_retries;
          Alcotest.test_case "evict drops derived entries with the base" `Quick
            test_spec_cache_evict_drops_derived;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "soaks deterministic across jobs" `Slow
            test_parallel_soak_determinism;
          Alcotest.test_case "case studies deterministic across jobs" `Slow
            test_case_studies_parallel_deterministic;
        ] );
    ]
