(* Tests for the SEDSpec core: parameter selection, log collection, ES-CFG
   construction (Algorithm 1), control-flow reduction, data-dependency
   recovery, and the ES-Checker's three strategies and two modes. *)

open Devir

module QV = Devices.Qemu_version

let training_cases = 12

let build_for ?(version = None) name =
  let w = Workload.Samples.find name in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let version = Option.value version ~default:W.paper_version in
  let m = W.make_machine version in
  let built =
    Sedspec.Pipeline.build m ~device:name (W.trainer ~cases:training_cases)
  in
  (m, built, w)

(* Cache: the FDC build is reused by several tests. *)
let fdc_built = lazy (build_for "fdc")

let empty_selection =
  {
    Sedspec.Selection.scalars = [];
    buffers = [];
    fn_ptrs = [];
    index_params = [];
    tracked_buffers = [];
    rationale = [];
  }

(* --- Selection --------------------------------------------------------- *)

let test_selection_fdc_matches_paper_table1 () =
  let _, built, _ = Lazy.force fdc_built in
  let sel = Sedspec.Es_cfg.selection built.spec in
  (* Table I's examples: msr/dor/tdr registers, fifo buffer, data_pos
     counting variable, irq function pointer. *)
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " selected") true
        (Sedspec.Selection.is_scalar_param sel p))
    [ "msr"; "dor"; "tdr"; "data_pos"; "data_len"; "cmd"; "phase"; "irq" ];
  Alcotest.(check bool) "fifo selected as buffer" true
    (Sedspec.Selection.is_buffer_param sel "fifo");
  Alcotest.(check (list string)) "fn ptrs" [ "irq" ] sel.fn_ptrs;
  Alcotest.(check bool) "data_pos is an index param" true
    (List.mem "data_pos" sel.index_params)

let test_selection_other_devices () =
  (* Rule-based selection lands on the security-relevant fields for every
     device (paper Table I's categories). *)
  let check_static name expects_scalars expects_tracked =
    let w = Workload.Samples.find name in
    let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
    let p =
      Interp.program (Vmm.Machine.interp_of (W.make_machine W.paper_version) W.device_name)
    in
    let sel = Sedspec.Selection.select_static p in
    List.iter
      (fun f ->
        Alcotest.(check bool) (name ^ ": " ^ f ^ " selected") true
          (Sedspec.Selection.is_scalar_param sel f))
      expects_scalars;
    List.iter
      (fun b ->
        Alcotest.(check bool) (name ^ ": " ^ b ^ " content-tracked") true
          (List.mem b sel.tracked_buffers))
      expects_tracked
  in
  (* EHCI: the CVE-2020-14364 parameters. *)
  check_static "ehci" [ "setup_len"; "setup_index"; "setup_state"; "irq" ] [ "setup_buf" ];
  (* SDHCI: the CVE-2021-3409 parameters. *)
  check_static "sdhci" [ "blksize"; "data_count"; "transfer_active"; "is_read"; "irq" ] [];
  (* PCNet: ring/packet bookkeeping. *)
  check_static "pcnet" [ "csr0"; "rcvrl"; "recv_idx"; "xmit_pos"; "mode"; "irq" ] [];
  (* SCSI: both overflow targets and the completion pointer.  Note
     req_active is NOT selected at the vulnerable 2.4.0 version — the
     missing req_active guard is exactly CVE-2016-1568's bug, so nothing
     branches on it and the analysis rightly drops it (the reason SEDSpec
     cannot see the replayed completion). *)
  check_static "scsi"
    [ "ti_size"; "scsi_state"; "cdb_len"; "disk_len"; "status"; "complete_fn"; "irq" ]
    [ "cmdbuf"; "cdb"; "ti_buf" ]

let test_selection_index_params_per_device () =
  let check name field buffer =
    let w = Workload.Samples.find name in
    let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
    let p =
      Interp.program (Vmm.Machine.interp_of (W.make_machine W.paper_version) W.device_name)
    in
    let sel = Sedspec.Selection.select_static p in
    Alcotest.(check bool) (name ^ ": " ^ field ^ " is an index param") true
      (List.mem field sel.index_params);
    Alcotest.(check bool) (name ^ ": " ^ buffer ^ " is a buffer param") true
      (Sedspec.Selection.is_buffer_param sel buffer)
  in
  check "fdc" "data_pos" "fifo";
  check "ehci" "setup_index" "data_buf";
  check "sdhci" "data_count" "fifo_buffer";
  check "pcnet" "xmit_pos" "buffer";
  check "scsi" "ti_wptr" "ti_buf"

let test_selection_static_covers_all_devices () =
  List.iter
    (fun w ->
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let p = Interp.program (Vmm.Machine.interp_of (W.make_machine W.paper_version) W.device_name) in
      let sel = Sedspec.Selection.select_static p in
      Alcotest.(check bool) (W.device_name ^ " has scalars") true (sel.scalars <> []);
      Alcotest.(check bool) (W.device_name ^ " has buffers") true (sel.buffers <> []);
      Alcotest.(check bool) (W.device_name ^ " has fn ptrs") true (sel.fn_ptrs <> []))
    Workload.Samples.all

(* --- Logs -------------------------------------------------------------- *)

let test_log_collection_counts () =
  let _, built, _ = Lazy.force fdc_built in
  Alcotest.(check int) "one log per case" training_cases (List.length built.logs);
  Alcotest.(check bool) "thousands of interactions" true
    (Sedspec.Ds_log.interaction_count built.logs > 1000);
  Alcotest.(check bool) "entries recorded" true
    (Sedspec.Ds_log.entry_count built.logs > 1000)

let test_observation_points_are_joints () =
  let p = Devices.Fdc.program ~version:(QV.v 2 3 0) in
  let points = Sedspec.Ds_log.observation_points p in
  List.iter
    (fun bref ->
      let b = Program.find_block p bref in
      let ok =
        b.Block.kind <> Block.Normal
        ||
        match b.Block.term with
        | Term.Branch _ | Term.Switch _ | Term.Icall _ -> true
        | _ -> false
      in
      Alcotest.(check bool) (Program.bref_to_string bref ^ " is a joint") true ok)
    points

(* --- ES-CFG ------------------------------------------------------------ *)

let test_escfg_structure () =
  let _, built, _ = Lazy.force fdc_built in
  let spec = built.spec in
  Alcotest.(check bool) "nodes" true (Sedspec.Es_cfg.node_count spec > 30);
  (* The drive-specification setup block was never trained. *)
  Alcotest.(check bool) "untrained block absent" true
    (Sedspec.Es_cfg.node spec { Program.handler = "write"; label = "su_drivespec" }
    = None);
  (* A trained conditional has directional counts. *)
  (match Sedspec.Es_cfg.node spec { Program.handler = "write"; label = "w_cmd_phase" } with
  | Some n ->
    Alcotest.(check bool) "both directions trained" true (n.taken > 0 && n.not_taken > 0)
  | None -> Alcotest.fail "w_cmd_phase missing");
  (* Icall targets collected. *)
  (match Sedspec.Es_cfg.node spec { Program.handler = "write"; label = "ex_seek" } with
  | Some n ->
    Alcotest.(check (list int64)) "legit irq target" [ Devices.Fdc.irq_cb ] n.itargets
  | None -> Alcotest.fail "ex_seek missing");
  (* Commands decoded into the access table. *)
  Alcotest.(check bool) "seek command known" true
    (Sedspec.Es_cfg.cmd_known spec
       ({ Program.handler = "write"; label = "w_new_cmd" }, 0x0FL));
  Alcotest.(check bool) "drive-spec command unknown" false
    (Sedspec.Es_cfg.cmd_known spec
       ({ Program.handler = "write"; label = "w_new_cmd" }, 0x8EL))

let test_escfg_reduction_only_trivial () =
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m = W.make_machine W.paper_version in
  let unreduced =
    Sedspec.Pipeline.build ~reduce:false m ~device:"fdc" (W.trainer ~cases:6)
  in
  let removable =
    List.filter
      (fun (n : Sedspec.Es_cfg.node) ->
        n.kind = Block.Normal && n.dsod = []
        && match n.term with Term.Goto _ -> true | _ -> false)
      (Sedspec.Es_cfg.nodes unreduced.spec)
  in
  let before = Sedspec.Es_cfg.node_count unreduced.spec in
  let removed = Sedspec.Es_cfg.reduce unreduced.spec in
  Alcotest.(check int) "exactly the trivial nodes" (List.length removable) removed;
  Alcotest.(check int) "count consistent" (before - removed)
    (Sedspec.Es_cfg.node_count unreduced.spec)

let test_dsod_lifting_rule () =
  let open Devir.Dsl in
  let stmts =
    [
      set "x" (c 1);
      respond (c 2);
      note "hi";
      local "t" (c 3);
      store (c 0) (c 1);
      Stmt.Read_guest { local = "g"; addr = c 0; width = Width.W32 };
    ]
  in
  let lifted = Sedspec.Es_cfg.lift_dsod stmts in
  Alcotest.(check int) "keeps state, locals, guest reads" 3 (List.length lifted)

(* --- Data dependencies -------------------------------------------------- *)

let test_datadep_pcnet_sync_point () =
  let _, built, _ = build_for "pcnet" in
  (* The BCR4 link-status read branches on a host value: a sync point. *)
  Alcotest.(check bool) "pcnet has a sync point" true (built.datadep.sync_points > 0);
  let sync = Sedspec.Es_cfg.sync_points built.spec in
  Alcotest.(check bool) "r_lnkst is the sync block" true
    (List.exists
       (fun ((b : Program.bref), locals) ->
         b.label = "r_lnkst" && List.mem "lnk" locals)
       sync)

let test_datadep_fdc_fully_substituted () =
  let _, built, _ = Lazy.force fdc_built in
  Alcotest.(check int) "no sync points" 0 built.datadep.sync_points;
  Alcotest.(check int) "no guest replay" 0 built.datadep.guest_replay;
  Alcotest.(check bool) "all substituted" true (built.datadep.substituted > 0)

let test_datadep_pcnet_guest_replay () =
  let _, built, _ = build_for "pcnet" in
  (* Descriptor own-bit branches read guest memory. *)
  Alcotest.(check bool) "guest replay sites" true (built.datadep.guest_replay > 0)

(* Synthetic one-handler program: a host value and a guest load feed two
   locals; the branch site is where classification is queried. *)
let datadep_syn_program () =
  let open Devir.Dsl in
  let layout = Layout.make [ Layout.reg ~hw:true "st" Width.W8 ] in
  Program.make ~name:"ddsyn" ~layout
    [
      handler "d" ~params:[]
        [
          entry "e0"
            [
              hostv "hv" "clock";
              load "gv" (c 0x100);
              local "pure" (c 2);
            ]
            (goto "b1");
          blk "b1" [] (br (lcl "hv") "x" "x");
          exit_ "x" [];
        ];
    ]

(* The headline regression: [Datadep.analyze] used to classify a decision
   by its terminator's FIRST expression only (an [e :: _] match).  A site
   whose second expression is host-derived was silently treated as
   substitutable — the checker would then walk it pre-execution with a
   value it cannot compute.  The classification must join over all
   expressions: any host dependence wins, then any guest dependence. *)
let test_datadep_joins_all_exprs () =
  let p = datadep_syn_program () in
  let site = { Program.handler = "d"; label = "b1" } in
  let classify exprs = Sedspec.Datadep.classify_exprs p site exprs in
  let cls =
    Alcotest.testable
      (Fmt.of_to_string (function
        | Sedspec.Datadep.Substituted -> "substituted"
        | Guest_replay -> "guest-replay"
        | Sync_point -> "sync-point"))
      ( = )
  in
  let open Devir.Dsl in
  (* Failing before the fix: the head is pure, the tail is host-derived. *)
  Alcotest.(check (option cls)) "host dep in SECOND expr forces sync"
    (Some Sedspec.Datadep.Sync_point)
    (classify [ c 1; lcl "hv" ]);
  Alcotest.(check (option cls)) "host dep in head still syncs"
    (Some Sedspec.Datadep.Sync_point)
    (classify [ lcl "hv"; c 1 ]);
  Alcotest.(check (option cls)) "guest dep in second expr replays"
    (Some Sedspec.Datadep.Guest_replay)
    (classify [ lcl "pure"; lcl "gv" ]);
  Alcotest.(check (option cls)) "host beats guest in the join"
    (Some Sedspec.Datadep.Sync_point)
    (classify [ lcl "gv"; lcl "hv" ]);
  Alcotest.(check (option cls)) "pure exprs substitute"
    (Some Sedspec.Datadep.Substituted)
    (classify [ c 1; lcl "pure" ]);
  Alcotest.(check (option cls)) "no exprs, no classification" None (classify [])

(* Flow sensitivity: a host-derived local that is strongly redefined from
   a constant before the decision no longer forces a sync point — only
   definitions that actually reach the site count.  The old whole-handler
   chase (kept as [classify_site_flow_insensitive]) says sync. *)
let test_datadep_flow_sensitive () =
  let open Devir.Dsl in
  let layout = Layout.make [ Layout.reg ~hw:true "st" Width.W8 ] in
  let p =
    Program.make ~name:"ddflow" ~layout
      [
        handler "f" ~params:[]
          [
            entry "e0" [ hostv "t" "clock" ] (goto "m");
            blk "m" [ local "t" (c 5) ] (goto "b");
            blk "b" [] (br (lcl "t") "x" "x");
            exit_ "x" [];
          ];
      ]
  in
  let site = { Program.handler = "f"; label = "b" } in
  Alcotest.(check bool) "flow-insensitive chase still says sync" true
    (Sedspec.Datadep.classify_site_flow_insensitive p site (lcl "t")
    = Sedspec.Datadep.Sync_point);
  Alcotest.(check bool) "ddg sees only the reaching constant def" true
    (Sedspec.Datadep.classify_site p site (lcl "t")
    = Sedspec.Datadep.Substituted)

(* --- Minimization ------------------------------------------------------- *)

(* One synthetic handler that exercises all four minimization rewrites:
   - [e]     Entry, no work, goto            -> pruned
   - [chk1]  one-sided branch on st == 1     -> kept (the certifier)
   - [mid]   empty straight-line block       -> pruned
   - [chk2]  same one-sided branch           -> dominated, rewritten + pruned
   - [body]  local-only definitions, goto    -> merged into [sink], pruned
   - [sink]  state write (consumes the local)-> kept
   - [cfold] branch on a constant            -> folded + pruned
   - [out]   Exit                            -> pruned *)
let minimize_syn_spec () =
  let open Devir.Dsl in
  let layout =
    Layout.make
      [ Layout.reg ~hw:true "st" Width.W8; Layout.reg ~hw:true "cnt" Width.W8 ]
  in
  let program =
    Program.make ~name:"minsyn" ~layout
      [
        handler "h" ~params:[ "data" ]
          [
            entry "e" [] (goto "chk1");
            blk "chk1" [] (br (fld "st" ==% c 1) "mid" "dead1");
            blk "mid" [] (goto "chk2");
            blk "chk2" [] (br (fld "st" ==% c 1) "body" "dead2");
            blk "body" [ local "t" (c 3) ] (goto "sink");
            blk "sink" [ set "st" (lcl "t") ] (goto "cfold");
            blk "cfold" [] (br (c 1) "out" "dead3");
            exit_ "out" [];
            exit_ "dead1" [];
            exit_ "dead2" [];
            exit_ "dead3" [];
          ];
      ]
  in
  let spec = Sedspec.Es_cfg.create ~program ~selection:empty_selection in
  let b label = { Program.handler = "h"; label } in
  let node ?(taken = 0) ?(not_taken = 0) label succs =
    Sedspec.Es_cfg.import_node spec (b label) ~visits:(max 1 (taken + not_taken))
      ~taken ~not_taken ~cases:[] ~itargets:[]
      ~succs:(List.map b succs);
    Sedspec.Es_cfg.import_access spec ~cmd:None (b label)
  in
  node "e" [ "chk1" ];
  node ~taken:5 "chk1" [ "mid" ];
  node "mid" [ "chk2" ];
  node ~taken:5 "chk2" [ "body" ];
  node "body" [ "sink" ];
  node "sink" [ "cfold" ];
  node ~taken:5 "cfold" [ "out" ];
  node "out" [];
  spec

let test_minimize_all_passes () =
  let spec = minimize_syn_spec () in
  let mspec, rep = Sedspec.Minimize.run spec in
  Alcotest.(check int) "nodes before" 8 rep.Sedspec.Minimize.nodes_before;
  Alcotest.(check int) "constant branch folded" 1
    rep.Sedspec.Minimize.branches_folded;
  Alcotest.(check int) "dominated branch rewritten" 1
    rep.Sedspec.Minimize.branches_dominated;
  Alcotest.(check int) "chain merged" 1 rep.Sedspec.Minimize.chains_merged;
  Alcotest.(check int) "pruned" 6 rep.Sedspec.Minimize.pruned;
  Alcotest.(check int) "nodes after" 2 rep.Sedspec.Minimize.nodes_after;
  Alcotest.(check int) "node count matches report"
    rep.Sedspec.Minimize.nodes_after
    (Sedspec.Es_cfg.node_count mspec);
  (* The source spec is untouched. *)
  Alcotest.(check int) "source spec intact" 8 (Sedspec.Es_cfg.node_count spec);
  (* Survivors: the certifier branch and the state write.  The certifier's
     successor edge was re-chased through the pruned chain down to the
     surviving state-write node. *)
  let b label = { Program.handler = "h"; label } in
  (match Sedspec.Es_cfg.node mspec (b "chk1") with
  | Some n ->
    Alcotest.(check (list string)) "chk1 chases to sink" [ "sink" ]
      (List.map (fun (s : Program.bref) -> s.label) n.succs)
  | None -> Alcotest.fail "certifier chk1 was pruned");
  (match Sedspec.Es_cfg.node mspec (b "sink") with
  | Some n ->
    (* Merge moved body's local definition in front of sink's own DSOD. *)
    Alcotest.(check bool) "sink dsod starts with the forwarded local" true
      (match n.dsod with Stmt.Set_local ("t", _) :: _ -> true | _ -> false)
  | None -> Alcotest.fail "sink was pruned");
  Alcotest.(check bool) "minimized graph validates" true
    (Sedspec.Es_cfg.validate mspec = []);
  (* Derived-spec bookkeeping: the program is a clone with a new name but
     identical brefs; the prune counter folds into the reduce statistic. *)
  Alcotest.(check bool) "derived program renamed" true
    (Program.name (Sedspec.Es_cfg.program mspec) = "minsyn+min");
  Alcotest.(check int) "reduced counter absorbs prunes"
    (Sedspec.Es_cfg.reduced_count spec + rep.Sedspec.Minimize.pruned)
    (Sedspec.Es_cfg.reduced_count mspec)

(* Guard rails: a branch whose condition can be rewritten in between, a
   two-sided branch, and a node outside the no-command set must all
   survive. *)
let test_minimize_guards () =
  let open Devir.Dsl in
  let layout = Layout.make [ Layout.reg ~hw:true "st" Width.W8 ] in
  let program =
    Program.make ~name:"minguard" ~layout
      [
        handler "h" ~params:[]
          [
            entry "e" [] (goto "chk1");
            blk "chk1" [] (br (fld "st" ==% c 1) "mid" "dead1");
            (* [mid] writes the certified condition's field: chk2 must
               NOT be treated as dominated. *)
            blk "mid" [ set "st" (c 1) ] (goto "chk2");
            blk "chk2" [] (br (fld "st" ==% c 1) "two" "dead2");
            (* Two-sided in training: never foldable or dominated. *)
            blk "two" [] (br (fld "st" ==% c 0) "out" "priv");
            exit_ "out" [];
            (* Command-gated empty block: without no-command access its
               access check is load-bearing, so it must not be pruned. *)
            blk "priv" [] (goto "out2");
            exit_ "out2" [];
            exit_ "dead1" [];
            exit_ "dead2" [];
          ];
      ]
  in
  let spec = Sedspec.Es_cfg.create ~program ~selection:empty_selection in
  let b label = { Program.handler = "h"; label } in
  let node ?(taken = 0) ?(not_taken = 0) ?(no_cmd = true) label succs =
    Sedspec.Es_cfg.import_node spec (b label) ~visits:(max 1 (taken + not_taken))
      ~taken ~not_taken ~cases:[] ~itargets:[]
      ~succs:(List.map b succs);
    if no_cmd then Sedspec.Es_cfg.import_access spec ~cmd:None (b label)
  in
  node "e" [ "chk1" ];
  node ~taken:5 "chk1" [ "mid" ];
  node "mid" [ "chk2" ];
  node ~taken:5 "chk2" [ "two" ];
  node ~taken:3 ~not_taken:2 "two" [ "out"; "priv" ];
  node "out" [];
  node ~no_cmd:false "priv" [ "out2" ];
  node "out2" [];
  let mspec, rep = Sedspec.Minimize.run spec in
  Alcotest.(check int) "no branch folded" 0 rep.Sedspec.Minimize.branches_folded;
  Alcotest.(check int) "write between checks blocks domination" 0
    rep.Sedspec.Minimize.branches_dominated;
  Alcotest.(check bool) "chk2 survives" true
    (Sedspec.Es_cfg.node mspec (b "chk2") <> None);
  Alcotest.(check bool) "two-sided branch survives" true
    (Sedspec.Es_cfg.node mspec (b "two") <> None);
  Alcotest.(check bool) "command-gated block survives" true
    (Sedspec.Es_cfg.node mspec (b "priv") <> None);
  Alcotest.(check bool) "minimized graph validates" true
    (Sedspec.Es_cfg.validate mspec = [])

(* Minimizing every trained device spec must shrink (or at worst keep)
   the node count, preserve the command access table verbatim, and yield
   a graph that validates. *)
let test_minimize_all_devices () =
  List.iter
    (fun w ->
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let m = W.make_machine W.paper_version in
      let built =
        Sedspec.Pipeline.build m ~device:W.device_name
          (W.trainer ~cases:training_cases)
      in
      let mspec, rep = Sedspec.Minimize.run built.spec in
      Alcotest.(check bool) (W.device_name ^ ": never larger") true
        (rep.Sedspec.Minimize.nodes_after <= rep.Sedspec.Minimize.nodes_before);
      Alcotest.(check bool) (W.device_name ^ ": shrank") true
        (rep.Sedspec.Minimize.nodes_after < rep.Sedspec.Minimize.nodes_before);
      Alcotest.(check bool) (W.device_name ^ ": validates") true
        (Sedspec.Es_cfg.validate mspec = []);
      Alcotest.(check bool) (W.device_name ^ ": commands preserved") true
        (Sedspec.Es_cfg.commands mspec = Sedspec.Es_cfg.commands built.spec))
    Workload.Samples.all

(* Pin exactly which minimization passes fire on each real device spec
   (trained at the paper version with the suite's fixed case count).
   Today only the pruning pass finds work on real devices — the trained
   specs carry two empty pass-through nodes each, while constant
   folding, dominated-check pruning and chain merging fire exclusively
   on synthetic handlers ([test_minimize_all_passes]).  If a device
   model or the trainer changes shape, these counts move and the pin
   makes that visible; it also documents that pcnet is the only device
   whose spec contains a host-dependent decision site (link status),
   and that the flow-sensitive DDG classifier keeps it. *)
let test_minimize_pass_counts_per_device () =
  let expect =
    [
      (* device,  before, after, pruned, folded, dominated, merged,
         sync_fi, sync_ddg *)
      ("fdc", 44, 42, 2, 0, 0, 0, 0, 0);
      ("ehci", 31, 29, 2, 0, 0, 0, 0, 0);
      ("pcnet", 43, 41, 2, 0, 0, 0, 1, 1);
      ("sdhci", 38, 36, 2, 0, 0, 0, 0, 0);
      ("scsi", 59, 57, 2, 0, 0, 0, 0, 0);
      ("virtio", 25, 23, 2, 0, 0, 0, 0, 0);
    ]
  in
  List.iter
    (fun w ->
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let m = W.make_machine W.paper_version in
      let built =
        Sedspec.Pipeline.build m ~device:W.device_name
          (W.trainer ~cases:training_cases)
      in
      let _, rep = Sedspec.Minimize.run built.spec in
      let before, after, pruned, folded, dominated, merged, fi, ddg =
        match
          List.find_opt (fun (d, _, _, _, _, _, _, _, _) -> d = W.device_name)
            expect
        with
        | Some (_, a, b, c, d, e, f, g, h) -> (a, b, c, d, e, f, g, h)
        | None -> Alcotest.failf "no expectation for %s" W.device_name
      in
      let check what = Alcotest.(check int) (W.device_name ^ ": " ^ what) in
      check "nodes before" before rep.Sedspec.Minimize.nodes_before;
      check "nodes after" after rep.Sedspec.Minimize.nodes_after;
      check "pruned" pruned rep.Sedspec.Minimize.pruned;
      check "branches folded" folded rep.Sedspec.Minimize.branches_folded;
      check "branches dominated" dominated
        rep.Sedspec.Minimize.branches_dominated;
      check "chains merged" merged rep.Sedspec.Minimize.chains_merged;
      check "sync sites (flow-insensitive)" fi
        rep.Sedspec.Minimize.sync_sites_flow_insensitive;
      check "sync sites (DDG)" ddg rep.Sedspec.Minimize.sync_sites_ddg)
    Workload.Samples.all

(* --- Deterministic spec surface ----------------------------------------- *)

(* [commands]/[sync_points] used to leak Hashtbl fold order: two specs
   holding identical training state could print different stats, viz and
   JSON.  Build the same access table in opposite insertion orders and
   require identical observable output. *)
let test_escfg_deterministic_order () =
  let program = Devices.Fdc.program ~version:(QV.v 2 3 0) in
  let blocks =
    let acc = ref [] in
    Program.iter_blocks program (fun bref _ -> acc := bref :: !acc);
    Array.of_list (List.rev !acc)
  in
  let cmds =
    [ (blocks.(4), 0x10L); (blocks.(0), 0x8L); (blocks.(4), 0x2L);
      (blocks.(2), 0x45L) ]
  in
  let members = [ blocks.(1); blocks.(5); blocks.(3) ] in
  let build order_cmds order_members =
    let spec = Sedspec.Es_cfg.create ~program ~selection:empty_selection in
    List.iter
      (fun key ->
        List.iter
          (fun b -> Sedspec.Es_cfg.import_access spec ~cmd:(Some key) b)
          order_members)
      order_cmds;
    List.iter (Sedspec.Es_cfg.import_access spec ~cmd:None) order_members;
    List.iter
      (fun (b : Program.bref) ->
        Sedspec.Es_cfg.import_node spec b ~visits:1 ~taken:0 ~not_taken:0
          ~cases:[] ~itargets:[] ~succs:[])
      order_members;
    spec
  in
  let s1 = build cmds members in
  let s2 = build (List.rev cmds) (List.rev members) in
  Alcotest.(check bool) "commands sorted identically" true
    (Sedspec.Es_cfg.commands s1 = Sedspec.Es_cfg.commands s2);
  Alcotest.(check bool) "access entries identical" true
    (Sedspec.Es_cfg.access_entries s1 = Sedspec.Es_cfg.access_entries s2);
  Alcotest.(check string) "pp_stats identical"
    (Format.asprintf "%a" Sedspec.Es_cfg.pp_stats s1)
    (Format.asprintf "%a" Sedspec.Es_cfg.pp_stats s2);
  (* And the sorted views really are sorted. *)
  let sorted_cmds = Sedspec.Es_cfg.commands s1 in
  Alcotest.(check bool) "commands ascending" true
    (List.sort
       (fun (b1, v1) (b2, v2) ->
         match Program.bref_compare b1 b2 with
         | 0 -> Int64.compare v1 v2
         | n -> n)
       sorted_cmds
    = sorted_cmds)

let test_escfg_reduce_idempotent () =
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m = W.make_machine W.paper_version in
  let built =
    Sedspec.Pipeline.build ~reduce:false m ~device:"fdc" (W.trainer ~cases:6)
  in
  let spec = built.spec in
  let r1 = Sedspec.Es_cfg.reduce spec in
  Alcotest.(check bool) "first reduce removes nodes" true (r1 > 0);
  Alcotest.(check int) "counter after first pass" r1
    (Sedspec.Es_cfg.reduced_count spec);
  let r2 = Sedspec.Es_cfg.reduce spec in
  Alcotest.(check int) "second reduce is a no-op" 0 r2;
  Alcotest.(check int) "counter unchanged" r1 (Sedspec.Es_cfg.reduced_count spec);
  (* No surviving successor edge dangles into a removed block. *)
  Alcotest.(check (list string)) "no dangling successors" []
    (List.map
       (fun (e : Validate.error) -> e.message)
       (Sedspec.Es_cfg.validate spec))

(* --- Checker: benign traffic -------------------------------------------- *)

let test_checker_zero_fp_on_training_replay () =
  List.iter
    (fun w ->
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let m = W.make_machine W.paper_version in
      let built =
        Sedspec.Pipeline.build m ~device:W.device_name
          (W.trainer ~cases:training_cases)
      in
      let checker = Sedspec.Pipeline.protect m ~device:W.device_name built in
      let trainer = W.trainer ~cases:training_cases in
      for case = 0 to training_cases - 1 do
        trainer.Sedspec.Pipeline.run_case m case
      done;
      let anoms = Sedspec.Checker.drain_anomalies checker in
      if anoms <> [] then
        Alcotest.failf "%s: %d false positives, first: %s" W.device_name
          (List.length anoms)
          (Format.asprintf "%a" Sedspec.Checker.pp_anomaly (List.hd anoms));
      let stats = Sedspec.Checker.stats checker in
      Alcotest.(check bool) (W.device_name ^ " interactions checked") true
        (stats.Sedspec.Checker.interactions > 100))
    Workload.Samples.all

let test_checker_soak_zero_fp_without_rare () =
  List.iter
    (fun w ->
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let r =
        Metrics.Fpr.soak ~seed:5L ~cases_per_hour:6 ~checkpoint_hours:[ 1 ]
          ~rare_prob:0.0
          (module W)
      in
      Alcotest.(check int) (W.device_name ^ " fp-free without rare tail") 0 r.fp_cases)
    Workload.Samples.all

let test_checker_rare_command_is_flagged () =
  let m, built, _ = Lazy.force fdc_built in
  let checker =
    Sedspec.Pipeline.protect
      ~config:
        { Sedspec.Checker.default_config with Sedspec.Checker.mode = Sedspec.Checker.Enhancement }
      m ~device:"fdc" built
  in
  let d = Workload.Fdc_driver.create m in
  ignore (Workload.Fdc_driver.reset d);
  (* VERSION is trained (drivers probe it at init); DUMPREG is not. *)
  ignore (Workload.Fdc_driver.version d);
  Alcotest.(check int) "trained maintenance command passes" 0
    (List.length (Sedspec.Checker.drain_anomalies checker));
  ignore (Workload.Fdc_driver.dumpreg d);
  let anoms = Sedspec.Checker.drain_anomalies checker in
  Alcotest.(check bool) "rare command flagged" true (anoms <> []);
  Alcotest.(check bool) "conditional strategy" true
    (List.for_all
       (fun (a : Sedspec.Checker.anomaly) ->
         a.strategy = Sedspec.Checker.Conditional_jump_check)
       anoms);
  Alcotest.(check bool) "enhancement mode does not halt" false (Vmm.Machine.halted m)

let test_checker_protection_halts_enhancement_warns () =
  (* Same anomaly, both modes. *)
  let run mode =
    let w = Workload.Samples.find "fdc" in
    let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
    let m = W.make_machine W.paper_version in
    let built = Sedspec.Pipeline.build m ~device:"fdc" (W.trainer ~cases:6) in
    let checker =
      Sedspec.Pipeline.protect
        ~config:{ Sedspec.Checker.default_config with Sedspec.Checker.mode }
        m ~device:"fdc" built
    in
    let d = Workload.Fdc_driver.create m in
    ignore (Workload.Fdc_driver.reset d);
    ignore (Workload.Fdc_driver.dumpreg d);
    (Vmm.Machine.halted m, Sedspec.Checker.drain_anomalies checker <> [],
     Vmm.Machine.warnings m <> [])
  in
  let halted_p, detected_p, _ = run Sedspec.Checker.Protection in
  Alcotest.(check bool) "protection halts" true halted_p;
  Alcotest.(check bool) "protection detects" true detected_p;
  let halted_e, detected_e, warned_e = run Sedspec.Checker.Enhancement in
  Alcotest.(check bool) "enhancement does not halt" false halted_e;
  Alcotest.(check bool) "enhancement detects" true detected_e;
  Alcotest.(check bool) "enhancement warns" true warned_e

let test_checker_sync_point_deferral () =
  let m, built, _ = build_for "pcnet" in
  let checker = Sedspec.Pipeline.protect m ~device:"pcnet" built in
  let d = Workload.Pcnet_driver.create m in
  ignore (Workload.Pcnet_driver.reset d);
  ignore (Workload.Pcnet_driver.init d ~mode:0 ());
  ignore (Workload.Pcnet_driver.start d);
  ignore (Workload.Pcnet_driver.link_up d);
  let stats = Sedspec.Checker.stats checker in
  Alcotest.(check bool) "link read deferred through sync" true
    (stats.Sedspec.Checker.deferred > 0);
  Alcotest.(check bool) "no anomaly" true
    (Sedspec.Checker.drain_anomalies checker = [])

let test_checker_resync_after_halt () =
  let m, built, _ = Lazy.force fdc_built in
  let checker = Sedspec.Pipeline.protect m ~device:"fdc" built in
  let d = Workload.Fdc_driver.create m in
  ignore (Workload.Fdc_driver.reset d);
  ignore (Workload.Fdc_driver.dumpreg d);
  Alcotest.(check bool) "halted on rare command" true (Vmm.Machine.halted m);
  Vmm.Machine.resume m;
  Sedspec.Checker.resync checker;
  ignore (Sedspec.Checker.drain_anomalies checker);
  (* Normal traffic clean again after resync. *)
  ignore (Workload.Fdc_driver.reset d);
  ignore (Workload.Fdc_driver.recalibrate d ~drive:0);
  ignore (Workload.Fdc_driver.sense_interrupt d);
  (match Workload.Fdc_driver.read_sector d ~drive:0 ~head:0 ~track:2 ~sect:1 with
  | Some _ -> ()
  | None -> Alcotest.fail "benign read blocked after resync");
  Alcotest.(check (list reject)) "clean" []
    (List.map (fun _ -> ()) (Sedspec.Checker.drain_anomalies checker))

(* --- Checker: strategy separation (one attack per strategy) ------------- *)

let detect_with attack_cve strategy =
  Metrics.Spec_cache.training_cases := training_cases;
  let attack = Attacks.Attack.find attack_cve in
  let w = Workload.Samples.find attack.device in
  let m, checker =
    Metrics.Spec_cache.fresh_protected_machine
      ~config:
        { Sedspec.Checker.default_config with Sedspec.Checker.strategies = [ strategy ] }
      w attack.qemu_version
  in
  attack.setup m;
  ignore (Sedspec.Checker.drain_anomalies checker);
  (try attack.run m with Exit -> ());
  Sedspec.Checker.drain_anomalies checker <> []

let test_strategy_parameter_only () =
  Alcotest.(check bool) "venom via parameter check" true
    (detect_with "CVE-2015-3456" Sedspec.Checker.Parameter_check);
  Alcotest.(check bool) "7504 invisible to parameter check" false
    (detect_with "CVE-2015-7504" Sedspec.Checker.Parameter_check)

let test_strategy_indirect_only () =
  Alcotest.(check bool) "7504 via indirect check" true
    (detect_with "CVE-2015-7504" Sedspec.Checker.Indirect_jump_check);
  Alcotest.(check bool) "3409 invisible to indirect check" false
    (detect_with "CVE-2021-3409" Sedspec.Checker.Indirect_jump_check)

let test_strategy_conditional_only () =
  Alcotest.(check bool) "7909 via conditional check (walk limit)" true
    (detect_with "CVE-2016-7909" Sedspec.Checker.Conditional_jump_check);
  Alcotest.(check bool) "3409 invisible to conditional check" false
    (detect_with "CVE-2021-3409" Sedspec.Checker.Conditional_jump_check)

let test_prevention_is_pre_execution () =
  (* Parameter check stops venom before the device writes out of bounds. *)
  Metrics.Spec_cache.training_cases := training_cases;
  let attack = Attacks.Attack.find "CVE-2015-3456" in
  let w = Workload.Samples.find "fdc" in
  let m, checker =
    Metrics.Spec_cache.fresh_protected_machine
      ~config:
        {
          Sedspec.Checker.default_config with
          Sedspec.Checker.strategies = [ Sedspec.Checker.Parameter_check ];
        }
      w attack.qemu_version
  in
  attack.setup m;
  let effects =
    Attacks.Attack.observe_effects m ~device:"fdc"
      (fun () -> try attack.run m with Exit -> ())
      attack
  in
  Alcotest.(check int) "no corruption happened" 0 effects.oob_writes;
  Alcotest.(check int) "no trap happened" 0 (List.length effects.traps);
  let anoms = Sedspec.Checker.drain_anomalies checker in
  Alcotest.(check bool) "anomaly was pre-execution" true
    (List.for_all (fun (a : Sedspec.Checker.anomaly) -> a.pre_execution) anoms
    && anoms <> [])

(* --- Persistence --------------------------------------------------------- *)

let test_persist_roundtrip () =
  let _, built, _ = Lazy.force fdc_built in
  let text = Sedspec.Persist.to_string built.spec in
  let program = Sedspec.Es_cfg.program built.spec in
  match Sedspec.Persist.of_string ~program text with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok spec' ->
    Alcotest.(check int) "node count" (Sedspec.Es_cfg.node_count built.spec)
      (Sedspec.Es_cfg.node_count spec');
    Alcotest.(check int) "commands" (List.length (Sedspec.Es_cfg.commands built.spec))
      (List.length (Sedspec.Es_cfg.commands spec'));
    (* Node statistics survive. *)
    List.iter
      (fun (n : Sedspec.Es_cfg.node) ->
        match Sedspec.Es_cfg.node spec' n.bref with
        | Some n' ->
          Alcotest.(check int) "visits" n.visits n'.visits;
          Alcotest.(check int) "taken" n.taken n'.taken;
          Alcotest.(check int) "not taken" n.not_taken n'.not_taken;
          Alcotest.(check (list int64)) "itargets" n.itargets n'.itargets;
          Alcotest.(check int) "cases" (List.length n.cases) (List.length n'.cases)
        | None -> Alcotest.failf "node %s lost" (Program.bref_to_string n.bref))
      (Sedspec.Es_cfg.nodes built.spec);
    (* Selection survives. *)
    let s = Sedspec.Es_cfg.selection built.spec
    and s' = Sedspec.Es_cfg.selection spec' in
    Alcotest.(check (list string)) "scalars" s.scalars s'.scalars;
    Alcotest.(check (list string)) "tracked buffers" s.tracked_buffers s'.tracked_buffers

let test_persist_rejects_garbage () =
  let p = Devices.Fdc.program ~version:(QV.v 2 3 0) in
  (match Sedspec.Persist.of_string ~program:p "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match
    Sedspec.Persist.of_string ~program:p
      "sedspec-spec v1\nprogram pcnet\nend\n"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong program accepted"

let test_persisted_spec_still_detects () =
  (* Save the trained FDC spec, reload it, protect a fresh machine with it
     and confirm venom is still caught. *)
  let _, built, _ = Lazy.force fdc_built in
  let text = Sedspec.Persist.to_string built.spec in
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m = W.make_machine (QV.v 2 3 0) in
  let program = Interp.program (Vmm.Machine.interp_of m "fdc") in
  match Sedspec.Persist.of_string ~program text with
  | Error msg -> Alcotest.failf "reload failed: %s" msg
  | Ok spec ->
    let checker = Sedspec.Checker.attach m ~spec "fdc" in
    let d = Workload.Fdc_driver.create m in
    ignore (Workload.Fdc_driver.reset d);
    ignore (Workload.Fdc_driver.recalibrate d ~drive:0);
    ignore (Workload.Fdc_driver.sense_interrupt d);
    Alcotest.(check int) "benign clean" 0
      (List.length (Sedspec.Checker.drain_anomalies checker));
    ignore (Workload.Io.outb m (Int64.add Devices.Fdc.io_base 5L) 0x8E);
    Alcotest.(check bool) "venom detected by reloaded spec" true
      (Sedspec.Checker.drain_anomalies checker <> [])

let test_persist_stale_allow_fails () =
  (* A node line closes any open cmd block; an allow line appearing after
     it used to silently extend the previous command's access set. *)
  let p = Devices.Fdc.program ~version:(QV.v 2 3 0) in
  let text =
    "sedspec-spec v1\n\
     program fdc\n\
     cmd write w_dispatch 15\n\
    \  allow write ex_seek\n\
     node write w_dispatch 3 1 2\n\
    \  allow write ex_seek\n\
     end\n"
  in
  match Sedspec.Persist.of_string ~program:p text with
  | Error msg ->
    Alcotest.(check bool) "fails fast on the stale allow" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "stale allow after a node was accepted"

let test_persist_rejects_bad_names () =
  (* The format is word/comma separated: a name with a space or comma
     cannot round-trip, so saving must refuse instead of corrupting. *)
  let p = Devices.Fdc.program ~version:(QV.v 2 3 0) in
  List.iter
    (fun scalar ->
      let sel = { empty_selection with Sedspec.Selection.scalars = [ scalar ] } in
      let spec = Sedspec.Es_cfg.create ~program:p ~selection:sel in
      let target = Filename.concat (Filename.get_temp_dir_name ()) "bad.spec" in
      (match Sedspec.Persist.save spec target with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "saved unpersistable scalar %S" scalar);
      Alcotest.(check bool) "no file was written" false (Sys.file_exists target);
      match Sedspec.Persist.to_string spec with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "serialised unpersistable scalar %S" scalar)
    [ "bad name"; "bad,name"; "bad\nname"; "" ]

let test_persist_save_atomic_roundtrip () =
  let _, built, _ = Lazy.force fdc_built in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sedspec_persist_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o700;
  let path = Filename.concat dir "fdc.spec" in
  (match Sedspec.Persist.save built.spec path with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save failed: %s" msg);
  (* The temp file was renamed over the target, not left behind. *)
  Alcotest.(check (list string)) "only the spec file remains" [ "fdc.spec" ]
    (Array.to_list (Sys.readdir dir));
  let program = Sedspec.Es_cfg.program built.spec in
  (match Sedspec.Persist.load ~program path with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok spec' ->
    Alcotest.(check int) "node count survives the file"
      (Sedspec.Es_cfg.node_count built.spec)
      (Sedspec.Es_cfg.node_count spec'));
  Sys.remove path;
  (* An unwritable destination is a clean [Error], not an exception or a
     half-written file. *)
  match Sedspec.Persist.save built.spec (Filename.concat dir "no/such/dir.spec") with
  | Error _ -> Sys.rmdir dir
  | Ok () -> Alcotest.fail "save into a missing directory succeeded"

let test_persist_crc_detects_corruption () =
  let _, built, _ = Lazy.force fdc_built in
  let text = Sedspec.Persist.to_string built.spec in
  let program = Sedspec.Es_cfg.program built.spec in
  (* The serialisation ends with a crc trailer over the body. *)
  let lines = String.split_on_char '\n' (String.trim text) in
  (match List.rev lines with
  | last :: _ ->
    Alcotest.(check bool) "crc trailer present" true
      (String.length last = 12 && String.sub last 0 4 = "crc ")
  | [] -> Alcotest.fail "empty serialisation");
  (* Any single flipped bit is rejected on load, wherever it lands —
     including inside the trailer itself. *)
  List.iter
    (fun i ->
      let b = Bytes.of_string text in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x04));
      match Sedspec.Persist.of_string ~program (Bytes.to_string b) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bit flip at offset %d accepted" i)
    [ 0; String.length text / 3; String.length text / 2;
      String.length text - 2 ];
  (* Truncations either fail to load or (cut exactly at the trailer
     seam, where the body is still a complete legacy file) reload to a
     semantically identical spec. *)
  List.iter
    (fun n ->
      match Sedspec.Persist.of_string ~program (String.sub text 0 n) with
      | Error _ -> ()
      | Ok spec' ->
        Alcotest.(check string)
          (Printf.sprintf "truncation to %d bytes is semantically benign" n)
          text
          (Sedspec.Persist.to_string spec'))
    [
      String.length text / 4;
      String.length text / 2;
      String.length text - 1;
      String.length text - 13 (* exactly the crc line: a legacy file *);
    ]

let test_persist_legacy_without_crc_loads () =
  (* Spec files written before the crc trailer carry no [crc] line; they
     must still load, and re-serialising them adds the trailer back. *)
  let _, built, _ = Lazy.force fdc_built in
  let text = Sedspec.Persist.to_string built.spec in
  let program = Sedspec.Es_cfg.program built.spec in
  let legacy = String.sub text 0 (String.length text - 13) in
  Alcotest.(check bool) "legacy body ends with end" true
    (String.length legacy > 4
    && String.sub legacy (String.length legacy - 4) 4 = "end\n");
  match Sedspec.Persist.of_string ~program legacy with
  | Error msg -> Alcotest.failf "legacy file rejected: %s" msg
  | Ok spec' ->
    Alcotest.(check string) "legacy reload is identical" text
      (Sedspec.Persist.to_string spec')

(* Generator for arbitrary well-formed training state over the FDC
   program — shared by the persist round-trip property and the evolve
   self-diff property. *)
let training_state_program = Devices.Fdc.program ~version:(QV.v 2 3 0)

let training_state_blocks =
  let acc = ref [] in
  Program.iter_blocks training_state_program (fun bref _ -> acc := bref :: !acc);
  Array.of_list (List.rev !acc)

let training_state_gen =
  let blocks = training_state_blocks in
  let nblocks = Array.length blocks in
  let open QCheck.Gen in
  let idx = int_bound (nblocks - 1) in
  let stat = int_bound 9999 in
  let value = map Int64.of_int (int_bound 4095) in
  let node_for i =
    let* visits = stat and* taken = stat and* not_taken = stat in
    let* cases = list_size (int_bound 4) (pair value idx) in
    let* itargets = list_size (int_bound 4) value in
    let* succs = list_size (int_bound 4) idx in
    return (i, visits, taken, not_taken, cases, itargets, succs)
  in
  let* node_idxs = map (List.sort_uniq compare) (list_size (int_bound 12) idx) in
  let* nodes = flatten_l (List.map node_for node_idxs) in
  let* cmd_keys =
    map (List.sort_uniq compare) (list_size (int_bound 5) (pair idx value))
  in
  let* cmds =
    flatten_l
      (List.map
         (fun (i, v) ->
           let* allowed = list_size (int_range 1 5) idx in
           return (i, v, allowed))
         cmd_keys)
  in
  let* nocmd = map (List.sort_uniq compare) (list_size (int_bound 5) idx) in
  return (nodes, cmds, nocmd)

let build_training_state (nodes, cmds, nocmd) =
  let blocks = training_state_blocks in
  let spec =
    Sedspec.Es_cfg.create ~program:training_state_program
      ~selection:empty_selection
  in
  List.iter
    (fun (i, visits, taken, not_taken, cases, itargets, succs) ->
      Sedspec.Es_cfg.import_node spec blocks.(i) ~visits ~taken ~not_taken
        ~cases:(List.map (fun (v, li) -> (v, blocks.(li).Program.label)) cases)
        ~itargets
        ~succs:(List.map (fun si -> blocks.(si)) succs))
    nodes;
  List.iter
    (fun (di, v, allowed) ->
      List.iter
        (fun ai ->
          Sedspec.Es_cfg.import_access spec ~cmd:(Some (blocks.(di), v))
            blocks.(ai))
        allowed)
    cmds;
  List.iter
    (fun ni -> Sedspec.Es_cfg.import_access spec ~cmd:None blocks.(ni))
    nocmd;
  spec

(* Property: any well-formed training state round-trips through the text
   format — node statistics, observed cases, indirect targets, successor
   edges and the command access table all survive save -> load. *)
let persist_roundtrip_prop =
  let program = training_state_program in
  let blocks = training_state_blocks in
  QCheck.Test.make ~name:"persist round-trips any training state" ~count:60
    (QCheck.make training_state_gen) (fun desc ->
      let spec = build_training_state desc in
      match
        Sedspec.Persist.of_string ~program (Sedspec.Persist.to_string spec)
      with
      | Error msg -> QCheck.Test.fail_reportf "reload failed: %s" msg
      | Ok spec' ->
        Sedspec.Es_cfg.node_count spec = Sedspec.Es_cfg.node_count spec'
        && List.for_all
             (fun (n : Sedspec.Es_cfg.node) ->
               match Sedspec.Es_cfg.node spec' n.bref with
               | None -> false
               | Some n' ->
                 n.visits = n'.visits && n.taken = n'.taken
                 && n.not_taken = n'.not_taken && n.cases = n'.cases
                 && n.itargets = n'.itargets && n.succs = n'.succs)
             (Sedspec.Es_cfg.nodes spec)
        && List.sort compare (Sedspec.Es_cfg.commands spec)
           = List.sort compare (Sedspec.Es_cfg.commands spec')
        && List.for_all
             (fun key ->
               Array.for_all
                 (fun b ->
                   Sedspec.Es_cfg.cmd_allows spec key b
                   = Sedspec.Es_cfg.cmd_allows spec' key b)
                 blocks)
             (Sedspec.Es_cfg.commands spec)
        && Array.for_all
             (fun b ->
               Sedspec.Es_cfg.no_cmd_allows spec b
               = Sedspec.Es_cfg.no_cmd_allows spec' b)
             blocks)

let test_persist_all_devices () =
  Metrics.Spec_cache.training_cases := training_cases;
  List.iter
    (fun w ->
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let built = Metrics.Spec_cache.built (module W) W.paper_version in
      let program = Sedspec.Es_cfg.program built.spec in
      match Sedspec.Persist.of_string ~program (Sedspec.Persist.to_string built.spec) with
      | Error msg -> Alcotest.failf "%s: %s" W.device_name msg
      | Ok spec' ->
        Alcotest.(check int)
          (W.device_name ^ " node count survives")
          (Sedspec.Es_cfg.node_count built.spec)
          (Sedspec.Es_cfg.node_count spec');
        Alcotest.(check int)
          (W.device_name ^ " commands survive")
          (List.length (Sedspec.Es_cfg.commands built.spec))
          (List.length (Sedspec.Es_cfg.commands spec')))
    Workload.Samples.all

let test_persist_version_roundtrip () =
  (* Versioned persistence: a pristine trained spec is revision 0 with no
     [revision] line — exactly the legacy on-disk format — and reparses
     bit-identically; a stamped revision/provenance survives the
     round-trip. *)
  let _, built, _ = build_for "fdc" in
  let spec = built.spec in
  let program = Sedspec.Es_cfg.program spec in
  Alcotest.(check int) "pristine spec is revision 0" 0
    (Sedspec.Es_cfg.revision spec);
  let text = Sedspec.Persist.to_string spec in
  let has_revision_line t =
    String.split_on_char '\n' t
    |> List.exists (fun l ->
           String.length l >= 9 && String.sub l 0 9 = "revision ")
  in
  Alcotest.(check bool) "revision-0 file carries no revision line" false
    (has_revision_line text);
  (match Sedspec.Persist.of_string ~program text with
  | Error msg -> Alcotest.failf "legacy reload failed: %s" msg
  | Ok spec' ->
    Alcotest.(check int) "legacy file loads as revision 0" 0
      (Sedspec.Es_cfg.revision spec');
    Alcotest.(check string) "legacy round-trip is bit-identical" text
      (Sedspec.Persist.to_string spec'));
  Sedspec.Es_cfg.set_version spec ~revision:7
    ~provenance:(Sedspec.Es_cfg.Retrained 48);
  let stamped = Sedspec.Persist.to_string spec in
  Alcotest.(check bool) "stamped file carries a revision line" true
    (has_revision_line stamped);
  match Sedspec.Persist.of_string ~program stamped with
  | Error msg -> Alcotest.failf "stamped reload failed: %s" msg
  | Ok spec' ->
    Alcotest.(check int) "revision survives" 7
      (Sedspec.Es_cfg.revision spec');
    Alcotest.(check bool) "provenance survives" true
      (Sedspec.Es_cfg.provenance spec' = Sedspec.Es_cfg.Retrained 48);
    Alcotest.(check string) "stamped round-trip is bit-identical" stamped
      (Sedspec.Persist.to_string spec')

(* --- Evolution ------------------------------------------------------------ *)

(* Property: the structural diff of any training state against itself is
   empty — the comparison layer never invents a delta. *)
let self_diff_empty_prop =
  QCheck.Test.make ~name:"self-diff of any training state is empty" ~count:60
    (QCheck.make training_state_gen) (fun desc ->
      let spec = build_training_state desc in
      let d = Sedspec.Evolve.diff ~base:spec ~cand:spec in
      Sedspec.Evolve.is_empty d && Sedspec.Evolve.change_count d = 0)

let test_evolve_diff_trained_vs_minimized () =
  (* The diff is keyed by bref, so it works across the base program and
     its "+min" derivation; minimization only ever narrows, so the
     candidate must not add nodes, commands, access rows or sync
     points. *)
  Metrics.Spec_cache.training_cases := training_cases;
  List.iter
    (fun name ->
      let w = Workload.Samples.find name in
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let base =
        (Metrics.Spec_cache.built (module W) W.paper_version).spec
      in
      let cand =
        (Metrics.Spec_cache.built_minimized (module W) W.paper_version).spec
      in
      let d = Sedspec.Evolve.diff ~base ~cand in
      Alcotest.(check int) (name ^ ": base is revision 0") 0 d.base_revision;
      Alcotest.(check bool) (name ^ ": candidate revision advanced") true
        (d.cand_revision > d.base_revision);
      Alcotest.(check (list string)) (name ^ ": no added nodes") []
        (List.map Program.bref_to_string d.added_nodes);
      Alcotest.(check int) (name ^ ": no added commands") 0
        (List.length d.added_cmds);
      Alcotest.(check int) (name ^ ": no added access rows") 0
        (List.length d.added_access);
      Alcotest.(check int) (name ^ ": no added sync points") 0
        (List.length d.added_syncs);
      (* Deterministic rendering: two renders of two computations agree. *)
      Alcotest.(check string) (name ^ ": diff JSON is deterministic")
        (Sedspec_util.Json.to_string (Sedspec.Evolve.diff_to_json d))
        (Sedspec_util.Json.to_string
           (Sedspec.Evolve.diff_to_json (Sedspec.Evolve.diff ~base ~cand))))
    (List.map
       (fun w ->
         let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
         W.device_name)
       Workload.Samples.all)

let test_evolve_diff_vulnerable_vs_patched () =
  (* Diff across device versions (the locator's setting): the bref
     keying makes specs trained on different program versions
     comparable.  Two complementary facts, both load-bearing for the
     rollout design: the sdhci patch is visible in benign evidence (a
     non-empty delta), while the FDC Venom patch is NOT — benign
     training cannot distinguish the vulnerable and patched models,
     which is exactly why the rollout ladder replays the attack
     catalogue instead of trusting the diff. *)
  Metrics.Spec_cache.training_cases := training_cases;
  let diff_versions name =
    let w = Workload.Samples.find name in
    let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
    let base = (Metrics.Spec_cache.built (module W) W.paper_version).spec in
    let cand =
      (Metrics.Spec_cache.built (module W) Devices.Qemu_version.latest).spec
    in
    (base, cand, Sedspec.Evolve.diff ~base ~cand)
  in
  let _, _, fdc_d = diff_versions "fdc" in
  Alcotest.(check bool) "Venom patch invisible to benign evidence" true
    (Sedspec.Evolve.is_empty fdc_d);
  let base, cand, d = diff_versions "sdhci" in
  Alcotest.(check bool) "sdhci patch changes the spec" false
    (Sedspec.Evolve.is_empty d);
  Alcotest.(check string) "cross-version diff JSON is deterministic"
    (Sedspec_util.Json.to_string (Sedspec.Evolve.diff_to_json d))
    (Sedspec_util.Json.to_string
       (Sedspec.Evolve.diff_to_json (Sedspec.Evolve.diff ~base ~cand)))

let test_evolve_merge_widens () =
  (* The conservative merge removes nothing the base learned, stamps the
     next revision with Merged provenance, and the result round-trips
     through the persistence layer. *)
  Metrics.Spec_cache.training_cases := training_cases;
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let base = (Metrics.Spec_cache.built (module W) W.paper_version).spec in
  let cand =
    (Metrics.Spec_cache.built_retrained (module W) W.paper_version
       ~cases:(training_cases + 6))
      .spec
  in
  let merged = Sedspec.Evolve.merge ~base ~cand in
  Alcotest.(check int) "merged revision is max + 1"
    (max (Sedspec.Es_cfg.revision base) (Sedspec.Es_cfg.revision cand) + 1)
    (Sedspec.Es_cfg.revision merged);
  Alcotest.(check bool) "merged provenance" true
    (Sedspec.Es_cfg.provenance merged = Sedspec.Es_cfg.Merged);
  let d = Sedspec.Evolve.diff ~base ~cand:merged in
  Alcotest.(check (list string)) "merge removes no nodes" []
    (List.map Program.bref_to_string d.removed_nodes);
  Alcotest.(check int) "merge removes no commands" 0
    (List.length d.removed_cmds);
  Alcotest.(check int) "merge removes no access rows" 0
    (List.length d.removed_access);
  Alcotest.(check int) "merge removes no sync points" 0
    (List.length d.removed_syncs);
  Alcotest.(check bool) "merged self-diff is empty" true
    (Sedspec.Evolve.is_empty
       (Sedspec.Evolve.diff ~base:merged ~cand:merged));
  (* Merged spec survives persistence with its version intact. *)
  let program = Sedspec.Es_cfg.program merged in
  (match Sedspec.Persist.of_string ~program (Sedspec.Persist.to_string merged)
   with
  | Error msg -> Alcotest.failf "merged spec reload failed: %s" msg
  | Ok m' ->
    Alcotest.(check int) "merged revision survives persistence"
      (Sedspec.Es_cfg.revision merged)
      (Sedspec.Es_cfg.revision m');
    Alcotest.(check bool) "merged self-diff after reload" true
      (Sedspec.Evolve.is_empty (Sedspec.Evolve.diff ~base:merged ~cand:m')));
  (* Cross-device merges are refused. *)
  let scsi = Workload.Samples.find "scsi" in
  let module S = (val scsi : Workload.Samples.DEVICE_WORKLOAD) in
  let other = (Metrics.Spec_cache.built (module S) S.paper_version).spec in
  match Sedspec.Evolve.merge ~base ~cand:other with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cross-program merge must be refused"

let test_checker_command_access_context () =
  (* The access table keys blocks by the current command: result bytes of a
     SEEK read back under SEEK's context, and the context survives across
     interactions. *)
  let _, built, _ = Lazy.force fdc_built in
  let spec = built.spec in
  (* Context is re-keyed by the execution dispatch switch, so the
     command's execution blocks live under the w_dispatch key. *)
  let w_dispatch : Program.bref = { handler = "write"; label = "w_dispatch" } in
  let seek = (w_dispatch, 0x0FL) and read = (w_dispatch, 0x46L) in
  Alcotest.(check bool) "seek cmd known" true (Sedspec.Es_cfg.cmd_known spec seek);
  (* The seek execution block is reachable under SEEK... *)
  Alcotest.(check bool) "ex_seek under seek" true
    (Sedspec.Es_cfg.cmd_allows spec seek
       { Program.handler = "write"; label = "ex_seek" });
  (* ...but not under READ. *)
  Alcotest.(check bool) "ex_seek not under read" false
    (Sedspec.Es_cfg.cmd_allows spec read
       { Program.handler = "write"; label = "ex_seek" });
  (* The exec-phase data reads belong to READ's subgraph. *)
  Alcotest.(check bool) "r_exec_byte under read" true
    (Sedspec.Es_cfg.cmd_allows spec read
       { Program.handler = "read"; label = "r_exec_byte" })

let test_viz_dot_output () =
  let _, built, _ = Lazy.force fdc_built in
  let dot = Sedspec.Viz.to_dot built.spec in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 100 && String.sub dot 0 7 = "digraph");
  (* Every node appears exactly once as a node statement. *)
  let count needle s =
    let n = String.length needle and m = String.length s in
    let rec go i acc =
      if i + n > m then acc
      else go (i + 1) (if String.sub s i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check bool) "one-sided marker present" true (count "[one-sided]" dot > 0);
  Alcotest.(check int) "closing brace" 1 (count "\n}" dot)

(* --- Remedy --------------------------------------------------------------- *)

let test_remedy_severity_classification () =
  let mk strategy pre =
    {
      Sedspec.Checker.strategy;
      at = None;
      detail = "";
      pre_execution = pre;
    }
  in
  Alcotest.(check string) "param critical" "critical"
    (Sedspec.Remedy.severity_to_string
       (Sedspec.Remedy.severity_of (mk Sedspec.Checker.Parameter_check true)));
  Alcotest.(check string) "indirect high" "high"
    (Sedspec.Remedy.severity_to_string
       (Sedspec.Remedy.severity_of (mk Sedspec.Checker.Indirect_jump_check true)));
  Alcotest.(check string) "conditional medium" "medium"
    (Sedspec.Remedy.severity_to_string
       (Sedspec.Remedy.severity_of (mk Sedspec.Checker.Conditional_jump_check true)));
  Alcotest.(check string) "post-execution promotes" "high"
    (Sedspec.Remedy.severity_to_string
       (Sedspec.Remedy.severity_of (mk Sedspec.Checker.Conditional_jump_check false)))

let test_remedy_rollback_restores_state () =
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m = W.make_machine (QV.v 2 3 0) in
  let built = Sedspec.Pipeline.build m ~device:"fdc" (W.trainer ~cases:8) in
  let checker = Sedspec.Pipeline.protect m ~device:"fdc" built in
  let sup = Sedspec.Remedy.create m ~device:"fdc" checker in
  let d = Workload.Fdc_driver.create m in
  ignore (Workload.Fdc_driver.reset d);
  ignore (Workload.Fdc_driver.seek d ~drive:0 ~head:0 ~track:21);
  ignore (Workload.Fdc_driver.sense_interrupt d);
  Alcotest.(check (list reject)) "clean tick" []
    (List.map (fun _ -> ()) (Sedspec.Remedy.tick sup));
  let arena = Interp.arena (Vmm.Machine.interp_of m "fdc") in
  Alcotest.(check int64) "track before attack" 21L (Arena.get arena "track");
  (* A rare command halts the VM (protection mode). *)
  ignore (Workload.Fdc_driver.dumpreg d);
  Alcotest.(check bool) "halted" true (Vmm.Machine.halted m);
  let events = Sedspec.Remedy.tick sup in
  Alcotest.(check int) "one event" 1 (List.length events);
  Alcotest.(check bool) "rolled back and resumed" false (Vmm.Machine.halted m);
  Alcotest.(check int) "rollback counted" 1 (Sedspec.Remedy.rollbacks sup);
  Alcotest.(check int64) "state restored to checkpoint" 21L (Arena.get arena "track");
  (* The machine keeps working after the rollback. *)
  ignore (Workload.Fdc_driver.seek d ~drive:0 ~head:0 ~track:5);
  ignore (Workload.Fdc_driver.sense_interrupt d);
  Alcotest.(check (list reject)) "clean again" []
    (List.map (fun _ -> ()) (Sedspec.Remedy.tick sup))

let test_remedy_halt_policy_keeps_halted () =
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m = W.make_machine (QV.v 2 3 0) in
  let built = Sedspec.Pipeline.build m ~device:"fdc" (W.trainer ~cases:8) in
  let checker = Sedspec.Pipeline.protect m ~device:"fdc" built in
  let sup =
    Sedspec.Remedy.create ~policy_of:(fun _ -> Sedspec.Remedy.Halt_vm) m
      ~device:"fdc" checker
  in
  let d = Workload.Fdc_driver.create m in
  ignore (Workload.Fdc_driver.reset d);
  ignore (Workload.Fdc_driver.dumpreg d);
  ignore (Sedspec.Remedy.tick sup);
  Alcotest.(check bool) "still halted" true (Vmm.Machine.halted m);
  Alcotest.(check int) "no rollback" 0 (Sedspec.Remedy.rollbacks sup)

(* --- Containment and fail-safe behaviour ---------------------------------- *)

let fresh_fdc ?config () =
  let w = Workload.Samples.find "fdc" in
  Metrics.Spec_cache.training_cases := training_cases;
  let m, checker =
    Metrics.Spec_cache.fresh_protected_machine ?config ~vmexit_cost:0 w
      (QV.v 2 3 0)
  in
  (m, checker, Workload.Fdc_driver.create m)

let string_contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let test_checker_containment_fail_closed () =
  let m, checker, d = fresh_fdc () in
  Sedspec.Checker.set_fault_hook checker (Some (fun () -> failwith "boom"));
  ignore (Workload.Fdc_driver.reset d);
  (* Fail-closed (the default): the contained error halts the VM instead
     of letting the unchecked interaction through. *)
  Alcotest.(check bool) "halted" true (Vmm.Machine.halted m);
  Alcotest.(check int) "one contained error" 1
    (Sedspec.Checker.internal_errors checker);
  (match Sedspec.Checker.anomalies checker with
  | [ a ] ->
    Alcotest.(check string) "diagnostic strategy" "internal-error"
      (Sedspec.Checker.strategy_to_string a.strategy);
    Alcotest.(check bool) "detail names the exception" true
      (string_contains a.detail "boom")
  | l -> Alcotest.failf "expected exactly one anomaly, got %d" (List.length l));
  (* The exception never crossed the interposer: the dispatch returned
     normally and the machine records a halt, not a crash. *)
  Alcotest.(check bool) "halt reason recorded" true
    (Vmm.Machine.halt_reason m <> None)

let test_checker_containment_fail_open_warn () =
  let config =
    {
      Sedspec.Checker.default_config with
      on_internal_error = Sedspec.Checker.Fail_open_warn;
    }
  in
  let m, checker, d = fresh_fdc ~config () in
  Sedspec.Checker.set_fault_hook checker (Some (fun () -> failwith "boom"));
  ignore (Workload.Fdc_driver.reset d);
  ignore (Workload.Fdc_driver.recalibrate d ~drive:0);
  (* Fail-open: the device keeps running, every contained error leaves a
     warning, and nothing halts. *)
  Alcotest.(check bool) "not halted" false (Vmm.Machine.halted m);
  Alcotest.(check bool) "warnings recorded" true (Vmm.Machine.warnings m <> []);
  Alcotest.(check bool) "errors counted" true
    (Sedspec.Checker.internal_errors checker > 0);
  (* Clearing the fault stops the bleeding: no further internal errors. *)
  Sedspec.Checker.set_fault_hook checker None;
  let n = Sedspec.Checker.internal_errors checker in
  ignore (Workload.Fdc_driver.sense_interrupt d);
  Alcotest.(check int) "no new internal errors" n
    (Sedspec.Checker.internal_errors checker)

let test_checker_resync_restores_shadow () =
  let m, checker, d = fresh_fdc () in
  ignore (Workload.Fdc_driver.reset d);
  ignore (Workload.Fdc_driver.seek d ~drive:0 ~head:0 ~track:21);
  ignore (Workload.Fdc_driver.sense_interrupt d);
  Alcotest.(check bool) "shadow clean after benign ops" true
    (Sedspec.Checker.shadow_matches_device checker = []);
  (* Mutate a decision-relevant parameter (data_pos is a Rule-2 index
     param) in the live control structure behind the checker's back. *)
  let arena = Interp.arena (Vmm.Machine.interp_of m "fdc") in
  Arena.set arena "data_pos" 77L;
  Alcotest.(check bool) "divergence detected" true
    (Sedspec.Checker.shadow_matches_device checker <> []);
  Sedspec.Checker.resync checker;
  Alcotest.(check bool) "post-resync shadow matches device" true
    (Sedspec.Checker.shadow_matches_device checker = [])

(* The fuzzer's machine scrub, so [Checker.reset] can be tested against
   the recycled machine the way the replay pool uses it. *)
let scrub_fdc m checker =
  Vmm.Machine.resume m;
  Vmm.Machine.clear_warnings m;
  Vmm.Machine.clear_traps m;
  Vmm.Guest_mem.clear (Vmm.Machine.ram m);
  Arena.reset (Interp.arena (Vmm.Machine.interp_of m "fdc"));
  Vmm.Irq.lower_line (Vmm.Machine.irq m) "fdc";
  Vmm.Irq.clear_counts (Vmm.Machine.irq m);
  Sedspec.Checker.reset checker

let benign_coverage checker d =
  let cov = Sedspec.Checker.coverage_create () in
  Sedspec.Checker.set_coverage checker (Some cov);
  ignore (Workload.Fdc_driver.reset d);
  ignore (Workload.Fdc_driver.recalibrate d ~drive:0);
  ignore (Workload.Fdc_driver.sense_interrupt d);
  Sedspec.Checker.set_coverage checker None;
  ( Sedspec.Checker.coverage_nodes cov,
    Sedspec.Checker.coverage_edges cov )

let test_checker_reset_equals_fresh () =
  (* After arbitrary traffic (including a contained fault), scrub+reset
     must behave exactly like a just-attached checker: the same benign
     sequence walks the same nodes and edges and raises nothing. *)
  let m, checker, d = fresh_fdc () in
  let fresh_nodes, fresh_edges = benign_coverage checker d in
  Sedspec.Checker.set_fault_hook checker (Some (fun () -> failwith "boom"));
  ignore (Workload.Fdc_driver.seek d ~drive:0 ~head:0 ~track:13);
  Alcotest.(check bool) "fault halted the machine" true (Vmm.Machine.halted m);
  scrub_fdc m checker;
  Alcotest.(check int) "internal errors cleared" 0
    (Sedspec.Checker.internal_errors checker);
  Alcotest.(check int) "heals cleared" 0 (Sedspec.Checker.heals checker);
  let nodes', edges' = benign_coverage checker (Workload.Fdc_driver.create m) in
  Alcotest.(check int) "anomaly-free after reset" 0
    (List.length (Sedspec.Checker.anomalies checker));
  Alcotest.(check bool) "same node coverage as a fresh checker" true
    (fresh_nodes = nodes');
  Alcotest.(check bool) "same edge coverage as a fresh checker" true
    (fresh_edges = edges')

let test_checker_heal_budget () =
  let config = { Sedspec.Checker.default_config with heal_budget = 2 } in
  let m, checker, d = fresh_fdc ~config () in
  ignore (Workload.Fdc_driver.reset d);
  ignore (Workload.Fdc_driver.seek d ~drive:0 ~head:0 ~track:21);
  ignore (Workload.Fdc_driver.sense_interrupt d);
  Alcotest.(check bool) "clean shadow heals to clean" true
    (Sedspec.Checker.heal checker = Sedspec.Checker.Heal_clean);
  let arena = Interp.arena (Vmm.Machine.interp_of m "fdc") in
  let corrupt v = Arena.set arena "data_pos" v in
  corrupt 90L;
  (match Sedspec.Checker.heal checker with
  | Sedspec.Checker.Heal_resynced n ->
    Alcotest.(check bool) "saw divergent params" true (n > 0)
  | _ -> Alcotest.fail "expected the first heal to resync");
  Alcotest.(check bool) "resync actually healed" true
    (Sedspec.Checker.shadow_matches_device checker = []);
  corrupt 91L;
  (match Sedspec.Checker.heal checker with
  | Sedspec.Checker.Heal_resynced _ -> ()
  | _ -> Alcotest.fail "expected the second heal to resync");
  corrupt 92L;
  (match Sedspec.Checker.heal checker with
  | Sedspec.Checker.Heal_exhausted n ->
    Alcotest.(check bool) "still divergent" true (n > 0)
  | _ -> Alcotest.fail "expected the third heal to be budget-exhausted");
  Alcotest.(check int) "heals capped at the budget" 2
    (Sedspec.Checker.heals checker)

let test_remedy_checkpoint_while_halted () =
  let m, checker, d = fresh_fdc () in
  let sup = Sedspec.Remedy.create m ~device:"fdc" checker in
  ignore (Workload.Fdc_driver.reset d);
  ignore (Workload.Fdc_driver.seek d ~drive:0 ~head:0 ~track:21);
  ignore (Workload.Fdc_driver.sense_interrupt d);
  (* Running machine: checkpoint works and logs nothing. *)
  Sedspec.Remedy.checkpoint sup;
  let log0 = List.length (Sedspec.Remedy.log sup) in
  ignore (Workload.Fdc_driver.dumpreg d);
  Alcotest.(check bool) "halted by the rare command" true
    (Vmm.Machine.halted m);
  (* Halted machine: a timer-driven checkpoint must not raise and must
     not overwrite the pre-anomaly target — it is a logged no-op. *)
  Sedspec.Remedy.checkpoint sup;
  Alcotest.(check bool) "skip was logged" true
    (List.length (Sedspec.Remedy.log sup) > log0);
  ignore (Sedspec.Remedy.tick sup);
  Alcotest.(check bool) "rolled back and resumed" false (Vmm.Machine.halted m);
  let arena = Interp.arena (Vmm.Machine.interp_of m "fdc") in
  Alcotest.(check int64) "restored the pre-anomaly checkpoint" 21L
    (Arena.get arena "track")

let test_remedy_circuit_breaker_escalates () =
  let m, checker, d = fresh_fdc () in
  let sup =
    Sedspec.Remedy.create
      ~policy_of:(fun _ -> Sedspec.Remedy.Rollback)
      ~breaker:(2, 8) m ~device:"fdc" checker
  in
  ignore (Workload.Fdc_driver.reset d);
  ignore (Sedspec.Remedy.tick sup);
  (* A fault that re-trips the checker after every restore: the first
     two rollbacks go through, the third escalates to a latched halt. *)
  for _ = 1 to 4 do
    ignore (Workload.Fdc_driver.dumpreg d);
    ignore (Sedspec.Remedy.tick sup)
  done;
  Alcotest.(check int) "breaker capped the rollbacks" 2
    (Sedspec.Remedy.rollbacks sup);
  Alcotest.(check bool) "breaker latched" true
    (Sedspec.Remedy.breaker_tripped sup);
  Alcotest.(check bool) "machine left halted" true (Vmm.Machine.halted m);
  Alcotest.(check bool) "escalation logged" true
    (List.exists
       (fun l -> string_contains l "breaker")
       (Sedspec.Remedy.log sup));
  (* Threshold validation. *)
  match
    Sedspec.Remedy.create ~breaker:(0, 5) m ~device:"fdc" checker
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "breaker with zero threshold accepted"

let test_remedy_snapshot_tracks_state () =
  (* The snapshot record must expose what previously had to be scraped
     from the log: tick/event/rollback counters, the in-window rollback
     count, breaker arming and latch, and the halt flag — as a pure read
     that never advances the supervisor. *)
  let m, checker, d = fresh_fdc () in
  let sup =
    Sedspec.Remedy.create
      ~policy_of:(fun _ -> Sedspec.Remedy.Rollback)
      ~breaker:(2, 8) m ~device:"fdc" checker
  in
  let s0 = Sedspec.Remedy.snapshot sup in
  Alcotest.(check int) "no ticks yet" 0 s0.Sedspec.Remedy.s_ticks;
  Alcotest.(check int) "no events yet" 0 s0.Sedspec.Remedy.s_events;
  Alcotest.(check (option (pair int int))) "breaker armed" (Some (2, 8))
    s0.Sedspec.Remedy.s_breaker;
  Alcotest.(check bool) "not tripped" false s0.Sedspec.Remedy.s_breaker_tripped;
  Alcotest.(check bool) "not halted" false s0.Sedspec.Remedy.s_halted;
  ignore (Workload.Fdc_driver.reset d);
  ignore (Sedspec.Remedy.tick sup);
  (* snapshot is a pure read: two in a row are identical and the tick
     counter reflects only real ticks. *)
  Alcotest.(check bool) "pure read" true
    (Sedspec.Remedy.snapshot sup = Sedspec.Remedy.snapshot sup);
  Alcotest.(check int) "one tick" 1
    (Sedspec.Remedy.snapshot sup).Sedspec.Remedy.s_ticks;
  ignore (Workload.Fdc_driver.dumpreg d);
  Alcotest.(check bool) "halted by rare command" true (Vmm.Machine.halted m);
  Alcotest.(check bool) "snapshot sees the halt" true
    (Sedspec.Remedy.snapshot sup).Sedspec.Remedy.s_halted;
  ignore (Sedspec.Remedy.tick sup);
  let s1 = Sedspec.Remedy.snapshot sup in
  Alcotest.(check int) "rollback counted" 1 s1.Sedspec.Remedy.s_rollbacks;
  Alcotest.(check int) "rollback in breaker window" 1
    s1.Sedspec.Remedy.s_rollbacks_in_window;
  Alcotest.(check int) "event recorded" 1 s1.Sedspec.Remedy.s_events;
  Alcotest.(check bool) "resumed" false s1.Sedspec.Remedy.s_halted;
  (* Re-trip until the breaker latches; the snapshot must agree with the
     accessors. *)
  for _ = 1 to 4 do
    ignore (Workload.Fdc_driver.dumpreg d);
    ignore (Sedspec.Remedy.tick sup)
  done;
  let s2 = Sedspec.Remedy.snapshot sup in
  Alcotest.(check bool) "breaker latched in snapshot" true
    s2.Sedspec.Remedy.s_breaker_tripped;
  Alcotest.(check int) "rollbacks capped" 2 s2.Sedspec.Remedy.s_rollbacks;
  Alcotest.(check bool) "left halted" true s2.Sedspec.Remedy.s_halted;
  (* Without a breaker the in-window count equals the lifetime count. *)
  let m2, checker2, d2 = fresh_fdc () in
  let sup2 = Sedspec.Remedy.create m2 ~device:"fdc" checker2 in
  ignore (Workload.Fdc_driver.reset d2);
  ignore (Sedspec.Remedy.tick sup2);
  ignore (Workload.Fdc_driver.dumpreg d2);
  ignore (Sedspec.Remedy.tick sup2);
  let s3 = Sedspec.Remedy.snapshot sup2 in
  Alcotest.(check int) "unarmed: window = lifetime" s3.Sedspec.Remedy.s_rollbacks
    s3.Sedspec.Remedy.s_rollbacks_in_window;
  Alcotest.(check (option (pair int int))) "unarmed breaker" None
    s3.Sedspec.Remedy.s_breaker

(* --- Shadow consistency property ----------------------------------------- *)

let prop_shadow_tracks_device =
  QCheck.Test.make ~name:"checker shadow matches device on benign traffic"
    ~count:4 QCheck.int64
    (fun seed ->
      Metrics.Spec_cache.training_cases := training_cases;
      List.for_all
        (fun w ->
          let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
          let m, checker =
            Metrics.Spec_cache.fresh_protected_machine w W.paper_version
          in
          let rng = Sedspec_util.Prng.create seed in
          W.soak_case ~mode:Workload.Samples.Random ~rng ~rare_prob:0.0 ~ops:4 m;
          match Sedspec.Checker.shadow_matches_device checker with
          | [] -> true
          | (name, s, d) :: _ ->
            QCheck.Test.fail_reportf "%s: %s shadow=%Ld device=%Ld" W.device_name
              name s d)
        Workload.Samples.all)

let () =
  Alcotest.run "sedspec"
    [
      ( "selection",
        [
          Alcotest.test_case "fdc matches paper Table I" `Quick
            test_selection_fdc_matches_paper_table1;
          Alcotest.test_case "static selection on all devices" `Quick
            test_selection_static_covers_all_devices;
          Alcotest.test_case "per-device security parameters" `Quick
            test_selection_other_devices;
          Alcotest.test_case "per-device index/buffer params" `Quick
            test_selection_index_params_per_device;
        ] );
      ( "logs",
        [
          Alcotest.test_case "collection counts" `Quick test_log_collection_counts;
          Alcotest.test_case "observation points are joints" `Quick
            test_observation_points_are_joints;
        ] );
      ( "es-cfg",
        [
          Alcotest.test_case "structure" `Quick test_escfg_structure;
          Alcotest.test_case "reduction removes only trivial nodes" `Quick
            test_escfg_reduction_only_trivial;
          Alcotest.test_case "dsod lifting rule" `Quick test_dsod_lifting_rule;
          Alcotest.test_case "deterministic command/table order" `Quick
            test_escfg_deterministic_order;
          Alcotest.test_case "reduce is idempotent and leaves no dangling edges"
            `Quick test_escfg_reduce_idempotent;
        ] );
      ( "datadep",
        [
          Alcotest.test_case "pcnet sync point" `Quick test_datadep_pcnet_sync_point;
          Alcotest.test_case "fdc fully substituted" `Quick
            test_datadep_fdc_fully_substituted;
          Alcotest.test_case "pcnet guest replay" `Quick test_datadep_pcnet_guest_replay;
          Alcotest.test_case "classification joins over all exprs" `Quick
            test_datadep_joins_all_exprs;
          Alcotest.test_case "flow-sensitive reaching defs" `Quick
            test_datadep_flow_sensitive;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "all four passes on a synthetic handler" `Quick
            test_minimize_all_passes;
          Alcotest.test_case "soundness guards hold" `Quick test_minimize_guards;
          Alcotest.test_case "shrinks every device spec" `Slow
            test_minimize_all_devices;
          Alcotest.test_case "pass counts pinned per device" `Slow
            test_minimize_pass_counts_per_device;
        ] );
      ( "checker-benign",
        [
          Alcotest.test_case "zero FP on training replay (all devices)" `Slow
            test_checker_zero_fp_on_training_replay;
          Alcotest.test_case "zero FP soak without rare tail" `Slow
            test_checker_soak_zero_fp_without_rare;
          Alcotest.test_case "rare command flagged" `Quick
            test_checker_rare_command_is_flagged;
          Alcotest.test_case "protection halts / enhancement warns" `Quick
            test_checker_protection_halts_enhancement_warns;
          Alcotest.test_case "sync point deferral" `Quick test_checker_sync_point_deferral;
          Alcotest.test_case "resync after halt" `Quick test_checker_resync_after_halt;
          Alcotest.test_case "command access context" `Quick
            test_checker_command_access_context;
        ] );
      ( "persist",
        [
          Alcotest.test_case "roundtrip" `Quick test_persist_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_persist_rejects_garbage;
          Alcotest.test_case "stale allow fails" `Quick test_persist_stale_allow_fails;
          Alcotest.test_case "rejects bad names" `Quick test_persist_rejects_bad_names;
          Alcotest.test_case "atomic save roundtrip" `Quick
            test_persist_save_atomic_roundtrip;
          Alcotest.test_case "crc detects corruption" `Quick
            test_persist_crc_detects_corruption;
          Alcotest.test_case "legacy file without crc loads" `Quick
            test_persist_legacy_without_crc_loads;
          QCheck_alcotest.to_alcotest persist_roundtrip_prop;
          Alcotest.test_case "reloaded spec still detects" `Quick
            test_persisted_spec_still_detects;
          Alcotest.test_case "dot rendering" `Quick test_viz_dot_output;
          Alcotest.test_case "roundtrip on all devices" `Slow test_persist_all_devices;
          Alcotest.test_case "versioned roundtrip + legacy revision 0" `Quick
            test_persist_version_roundtrip;
        ] );
      ( "evolve",
        [
          QCheck_alcotest.to_alcotest self_diff_empty_prop;
          Alcotest.test_case "diff trained vs minimized, all devices" `Slow
            test_evolve_diff_trained_vs_minimized;
          Alcotest.test_case "diff vulnerable vs patched" `Quick
            test_evolve_diff_vulnerable_vs_patched;
          Alcotest.test_case "merge widens, never narrows" `Quick
            test_evolve_merge_widens;
        ] );
      ( "remedy",
        [
          Alcotest.test_case "severity classification" `Quick
            test_remedy_severity_classification;
          Alcotest.test_case "rollback restores state" `Quick
            test_remedy_rollback_restores_state;
          Alcotest.test_case "halt policy keeps halted" `Quick
            test_remedy_halt_policy_keeps_halted;
          Alcotest.test_case "checkpoint while halted is a logged no-op" `Quick
            test_remedy_checkpoint_while_halted;
          Alcotest.test_case "circuit breaker escalates repeat rollbacks" `Quick
            test_remedy_circuit_breaker_escalates;
          Alcotest.test_case "snapshot tracks supervisor state" `Quick
            test_remedy_snapshot_tracks_state;
        ] );
      ( "containment",
        [
          Alcotest.test_case "fail-closed halts and diagnoses" `Quick
            test_checker_containment_fail_closed;
          Alcotest.test_case "fail-open warns and recovers" `Quick
            test_checker_containment_fail_open_warn;
          Alcotest.test_case "resync restores the shadow" `Quick
            test_checker_resync_restores_shadow;
          Alcotest.test_case "reset equals a fresh checker" `Quick
            test_checker_reset_equals_fresh;
          Alcotest.test_case "heal respects its budget" `Quick
            test_checker_heal_budget;
        ] );
      ( "invariants",
        [ QCheck_alcotest.to_alcotest prop_shadow_tracks_device ] );
      ( "checker-strategies",
        [
          Alcotest.test_case "parameter check scope" `Slow test_strategy_parameter_only;
          Alcotest.test_case "indirect check scope" `Slow test_strategy_indirect_only;
          Alcotest.test_case "conditional check scope" `Slow test_strategy_conditional_only;
          Alcotest.test_case "prevention is pre-execution" `Slow
            test_prevention_is_pre_execution;
        ] );
    ]
