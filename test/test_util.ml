(* Unit and property tests for the utility library. *)

module Prng = Sedspec_util.Prng
module Table = Sedspec_util.Table
module Runner = Sedspec_util.Runner

let test_determinism () =
  let a = Prng.create 1L and b = Prng.create 1L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let test_distinct_seeds () =
  let a = Prng.create 1L and b = Prng.create 2L in
  let differs = ref false in
  for _ = 1 to 16 do
    if Prng.next a <> Prng.next b then differs := true
  done;
  Alcotest.(check bool) "different streams" true !differs

let test_copy () =
  let a = Prng.create 7L in
  ignore (Prng.next a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.next a) (Prng.next b)

let test_split_independent () =
  let a = Prng.create 3L in
  let child = Prng.split a in
  Alcotest.(check bool) "child differs from parent" true
    (Prng.next child <> Prng.next a)

let test_pick_and_shuffle () =
  let rng = Prng.create 11L in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick in range" true (Array.mem (Prng.pick rng arr) arr)
  done;
  let arr2 = Array.init 10 Fun.id in
  Prng.shuffle rng arr2;
  let sorted = Array.copy arr2 in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 10 Fun.id) sorted

let test_bytes_len () =
  let rng = Prng.create 5L in
  Alcotest.(check int) "bytes length" 33 (Bytes.length (Prng.bytes rng 33))

let prop_int_bounds =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let prop_int_in =
  QCheck.Test.make ~name:"prng int_in inclusive bounds" ~count:500
    QCheck.(triple int64 (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, extra) ->
      let hi = lo + extra in
      let rng = Prng.create seed in
      let v = Prng.int_in rng lo hi in
      v >= lo && v <= hi)

let prop_float_bounds =
  QCheck.Test.make ~name:"prng float stays in bounds" ~count:500 QCheck.int64
    (fun seed ->
      let rng = Prng.create seed in
      let v = Prng.float rng 2.5 in
      v >= 0.0 && v < 2.5)

let prop_chance_extremes =
  QCheck.Test.make ~name:"chance 0 never, 1 always" ~count:200 QCheck.int64
    (fun seed ->
      let rng = Prng.create seed in
      (not (Prng.chance rng 0.0)) && Prng.chance (Prng.create seed) 1.0)

let test_int_uniform_smoke () =
  (* Rejection sampling: residues of a non-power-of-two bound stay near
     uniform (the old [r mod bound] passed this too for small bounds; the
     test pins the distribution so a bias regression is visible). *)
  let rng = Prng.create 17L in
  let counts = Array.make 6 0 in
  let draws = 6000 in
  for _ = 1 to draws do
    let v = Prng.int rng 6 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "residue %d count %d near %d" i c (draws / 6))
        true
        (c > 800 && c < 1200))
    counts

let prop_int_huge_bounds =
  (* Bounds near 2^62 exercise the rejection path: 2^62 mod bound is a
     large tail there, so the old modulo fold-back would favour small
     values almost half the time. *)
  QCheck.Test.make ~name:"prng int in bounds for huge bounds" ~count:200
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, off) ->
      let bound = (max_int / 2) + off in
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let prop_int_near_max =
  (* The largest representable bound: rejection sampling must still
     terminate and stay in range right at the edge. *)
  QCheck.Test.make ~name:"prng int in bounds near max_int" ~count:200
    QCheck.(pair int64 (int_range 0 4))
    (fun (seed, off) ->
      let bound = max_int - off in
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let prop_copy_identical_stream =
  QCheck.Test.make ~name:"prng copy yields an identical stream" ~count:200
    QCheck.(pair int64 (int_range 1 64))
    (fun (seed, n) ->
      let a = Prng.create seed in
      (* Burn a prefix so the copy starts mid-stream, not at the seed. *)
      for _ = 1 to n do
        ignore (Prng.next a)
      done;
      let b = Prng.copy a in
      List.for_all Fun.id
        (List.init n (fun _ -> Int64.equal (Prng.next a) (Prng.next b))))

let test_prng_preconditions_raise () =
  (* The preconditions are assert-guarded, so misuse dies loudly in any
     build rather than looping or returning garbage. *)
  let rng = Prng.create 1L in
  let expect_assert name f =
    match f () with
    | _ -> Alcotest.fail (name ^ ": expected Assert_failure")
    | exception Assert_failure _ -> ()
  in
  expect_assert "int 0" (fun () -> Prng.int rng 0);
  expect_assert "int negative" (fun () -> Prng.int rng (-3));
  expect_assert "int_in lo > hi" (fun () -> Prng.int_in rng 5 4);
  expect_assert "pick empty" (fun () -> Prng.pick rng [||])

(* --- Runner ------------------------------------------------------------- *)

let test_runner_order_preserved () =
  let items = List.init 97 Fun.id in
  let f x = (x * x) + 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map with %d jobs = List.map" jobs)
        (List.map f items)
        (Runner.map ~jobs f items))
    [ 1; 2; 4; 8 ]

let test_runner_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Runner.map ~jobs:4 Fun.id []);
  Alcotest.(check (list int)) "single" [ 9 ] (Runner.map ~jobs:4 (fun x -> x + 2) [ 7 ])

let test_runner_first_failure_wins () =
  (* Every task runs to completion; the first failure in input order is
     the one re-raised. *)
  let ran = Atomic.make 0 in
  let f x =
    Atomic.incr ran;
    if x = 3 || x = 7 then failwith (Printf.sprintf "boom%d" x) else x
  in
  (match Runner.map ~jobs:4 f (List.init 10 Fun.id) with
  | _ -> Alcotest.fail "expected a failure"
  | exception Failure msg -> Alcotest.(check string) "first by index" "boom3" msg);
  Alcotest.(check int) "all tasks ran" 10 (Atomic.get ran)

let test_runner_iter_runs_all () =
  let sum = Atomic.make 0 in
  Runner.iter ~jobs:3 (fun x -> ignore (Atomic.fetch_and_add sum x)) (List.init 20 Fun.id);
  Alcotest.(check int) "sum" 190 (Atomic.get sum)

let test_runner_seed_split_job_independent () =
  (* Task i's seed is the i-th splitmix64 output of the base seed: the
     same for any job count, and reproducible from Prng directly. *)
  let items = List.init 9 Fun.id in
  let seeds jobs =
    Runner.map_seeded ~jobs ~seed:42L (fun ~seed _ -> seed) items
  in
  let s1 = seeds 1 and s4 = seeds 4 in
  Alcotest.(check (list int64)) "jobs 1 = jobs 4" s1 s4;
  let rng = Prng.create 42L in
  List.iter
    (fun s -> Alcotest.(check int64) "matches the splitmix stream" (Prng.next rng) s)
    s1

let test_runner_default_jobs () =
  Alcotest.(check bool) "at least one" true (Runner.default_jobs () >= 1)

let test_runner_more_jobs_than_tasks () =
  (* Idle domains must neither deadlock nor disturb the result order. *)
  Alcotest.(check (list int)) "jobs 16, 3 tasks" [ 10; 20; 30 ]
    (Runner.map ~jobs:16 (fun x -> x * 10) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "jobs 16, 0 tasks" [] (Runner.map ~jobs:16 Fun.id [])

let test_runner_failure_mid_queue_drains () =
  (* A task raising while later tasks are still queued: the queue drains
     (every task runs exactly once) and re-running without the poison
     task preserves input ordering. *)
  let ran = Array.make 40 0 in
  (match
     Runner.map ~jobs:4
       (fun x ->
         ran.(x) <- ran.(x) + 1;
         if x = 5 then raise Exit else x)
       (List.init 40 Fun.id)
   with
  | _ -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "task %d ran once" i) 1 c)
    ran

let test_table_render () =
  let s =
    Table.render ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "contains padded cell" true
    (String.length s > 0
     &&
     (* every line same width *)
     let lines = String.split_on_char '\n' (String.trim s) in
     match lines with
     | l :: rest -> List.for_all (fun l' -> String.length l' = String.length l) rest
     | [] -> false)

let test_table_pads_short_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_fmt_pct () =
  Alcotest.(check string) "pct" "0.14%" (Table.fmt_pct 0.0014);
  Alcotest.(check string) "pct 100" "100.00%" (Table.fmt_pct 1.0)

let test_fmt_float () =
  Alcotest.(check string) "default digits" "1.50" (Table.fmt_float 1.5);
  Alcotest.(check string) "3 digits" "1.500" (Table.fmt_float ~digits:3 1.5)

(* --- Backoff ----------------------------------------------------------- *)

module Backoff = Sedspec_util.Backoff

let backoff_cfg_gen =
  QCheck.Gen.(
    let* base = int_range 1 8 in
    let* cap = int_range base 512 in
    let* jitter = float_bound_inclusive 0.9 in
    return { Backoff.base; cap; jitter })

let backoff_cfg_arb =
  QCheck.make
    ~print:(fun c ->
      Printf.sprintf "{base=%d; cap=%d; jitter=%f}" c.Backoff.base c.Backoff.cap
        c.Backoff.jitter)
    backoff_cfg_gen

let prop_backoff_deterministic =
  QCheck.Test.make ~name:"backoff delay deterministic per (cfg, seed, attempt)"
    ~count:300
    QCheck.(pair backoff_cfg_arb (pair int64 (int_range 0 80)))
    (fun (cfg, (seed, attempt)) ->
      Backoff.delay cfg ~seed ~attempt = Backoff.delay cfg ~seed ~attempt)

let prop_backoff_band =
  QCheck.Test.make ~name:"backoff delay within jitter band" ~count:500
    QCheck.(pair backoff_cfg_arb (pair int64 (int_range 0 80)))
    (fun (cfg, (seed, attempt)) ->
      let n = float_of_int (Backoff.nominal cfg ~attempt) in
      let d = float_of_int (Backoff.delay cfg ~seed ~attempt) in
      let lo = (n *. (1.0 -. cfg.Backoff.jitter)) -. 0.5
      and hi = (n *. (1.0 +. cfg.Backoff.jitter)) +. 0.5 in
      d >= Float.max 0.0 lo && d <= hi)

(* For jitter <= 1/3 the worst case across consecutive attempts is
   2n(1-j) >= n(1+j), so the jittered schedule can never shrink while
   the nominal delay is doubling (and is trivially flat at the cap). *)
let prop_backoff_monotone =
  QCheck.Test.make ~name:"backoff monotone in attempt for jitter <= 1/3"
    ~count:300
    QCheck.(pair int64 (pair (int_range 1 8) (int_range 0 100)))
    (fun (seed, (base, jpct)) ->
      let base = max 1 base and jpct = max 0 jpct in
      let cfg =
        { Backoff.base; cap = base * 256; jitter = float_of_int jpct /. 300.0 }
      in
      let ok = ref true in
      for attempt = 0 to 11 do
        (* The guarantee covers the doubling region; once the nominal
           saturates at the cap only the band bound applies. *)
        if
          Backoff.nominal cfg ~attempt:(attempt + 1)
          = 2 * Backoff.nominal cfg ~attempt
          && Backoff.delay cfg ~seed ~attempt
             > Backoff.delay cfg ~seed ~attempt:(attempt + 1)
        then ok := false
      done;
      !ok)

let prop_backoff_nominal_caps =
  QCheck.Test.make ~name:"backoff nominal doubles then saturates" ~count:300
    QCheck.(pair backoff_cfg_arb (int_range 0 200))
    (fun (cfg, attempt) ->
      let n = Backoff.nominal cfg ~attempt in
      n >= cfg.Backoff.base && n <= cfg.Backoff.cap
      &&
      (* base <= 8 and cap <= 512 from the generator, so [lsl] is exact
         through attempt 30 and anything past that saturates. *)
      if attempt <= 30 then
        let exact = cfg.Backoff.base lsl attempt in
        n = if exact > cfg.Backoff.cap then cfg.Backoff.cap else exact
      else n = cfg.Backoff.cap)

let test_backoff_retry_accounting () =
  let calls = ref 0 in
  let result =
    Backoff.retry ~seed:9L ~max_attempts:5 (fun ~attempt ->
        incr calls;
        Alcotest.(check int) "attempt index" (!calls - 1) attempt;
        if attempt < 3 then Error "transient" else Ok "done")
  in
  (match result with
  | Ok (v, spent) ->
    Alcotest.(check string) "value" "done" v;
    let expect =
      List.fold_left
        (fun acc a -> acc + Backoff.delay Backoff.default ~seed:9L ~attempt:a)
        0 [ 0; 1; 2 ]
    in
    Alcotest.(check int) "delay spent = sum of pre-success delays" expect spent
  | Error _ -> Alcotest.fail "expected success");
  Alcotest.(check int) "four calls" 4 !calls;
  match Backoff.retry ~seed:9L ~max_attempts:3 (fun ~attempt:_ -> Error "no") with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f ->
    Alcotest.(check string) "last error" "no" f.Backoff.error;
    Alcotest.(check int) "attempts" 3 f.Backoff.attempts;
    let expect =
      List.fold_left
        (fun acc a -> acc + Backoff.delay Backoff.default ~seed:9L ~attempt:a)
        0 [ 0; 1 ]
    in
    Alcotest.(check int) "delay total" expect f.Backoff.delay_total

let test_backoff_preconditions () =
  Alcotest.check_raises "max_attempts 0" (Invalid_argument "Backoff.retry: max_attempts must be >= 1")
    (fun () -> ignore (Backoff.retry ~seed:1L ~max_attempts:0 (fun ~attempt:_ -> Ok ())))

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "pick and shuffle" `Quick test_pick_and_shuffle;
          Alcotest.test_case "bytes" `Quick test_bytes_len;
          Alcotest.test_case "int residues uniform" `Quick test_int_uniform_smoke;
          QCheck_alcotest.to_alcotest prop_int_bounds;
          QCheck_alcotest.to_alcotest prop_int_in;
          QCheck_alcotest.to_alcotest prop_float_bounds;
          QCheck_alcotest.to_alcotest prop_chance_extremes;
          QCheck_alcotest.to_alcotest prop_int_huge_bounds;
          QCheck_alcotest.to_alcotest prop_int_near_max;
          QCheck_alcotest.to_alcotest prop_copy_identical_stream;
          Alcotest.test_case "preconditions raise" `Quick
            test_prng_preconditions_raise;
        ] );
      ( "runner",
        [
          Alcotest.test_case "order preserved" `Quick test_runner_order_preserved;
          Alcotest.test_case "empty and single" `Quick test_runner_empty_and_single;
          Alcotest.test_case "first failure wins" `Quick test_runner_first_failure_wins;
          Alcotest.test_case "iter runs all" `Quick test_runner_iter_runs_all;
          Alcotest.test_case "seed split job-independent" `Quick
            test_runner_seed_split_job_independent;
          Alcotest.test_case "default jobs" `Quick test_runner_default_jobs;
          Alcotest.test_case "more jobs than tasks" `Quick
            test_runner_more_jobs_than_tasks;
          Alcotest.test_case "failure mid-queue drains" `Quick
            test_runner_failure_mid_queue_drains;
        ] );
      ( "backoff",
        [
          QCheck_alcotest.to_alcotest prop_backoff_deterministic;
          QCheck_alcotest.to_alcotest prop_backoff_band;
          QCheck_alcotest.to_alcotest prop_backoff_monotone;
          QCheck_alcotest.to_alcotest prop_backoff_nominal_caps;
          Alcotest.test_case "retry accounting" `Quick
            test_backoff_retry_accounting;
          Alcotest.test_case "preconditions raise" `Quick
            test_backoff_preconditions;
        ] );
      ( "table",
        [
          Alcotest.test_case "render aligns" `Quick test_table_render;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "fmt_pct" `Quick test_fmt_pct;
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
        ] );
    ]
