(* Expectation tests for the Graphviz rendering of execution specs.

   The DOT output is a review artifact (what did the device's spec
   actually learn?), so these tests pin the exact text for a small
   hand-built spec and the annotation/escaping rules separately: a
   rendering change must show up as a conscious golden update, not as a
   silent drift. *)

open Devir
open Devir.Dsl

let empty_selection =
  {
    Sedspec.Selection.scalars = [];
    buffers = [];
    fn_ptrs = [];
    index_params = [];
    tracked_buffers = [];
    rationale = [];
  }

let layout = Layout.make [ Layout.reg "r8" Width.W8 ]

(* A miniature FDC-shaped device: entry, a command-decision switch, an
   execution block that needs host-side synchronisation, a one-sided
   conditional and the exit. *)
let mini_program =
  Program.make ~name:"mini_fdc" ~layout
    [
      handler "wr" ~params:[ "data" ]
        [
          entry "e" [] (goto "d");
          cmd_decision "d" [ set "r8" (prm "data") ]
            (switch (fld "r8") [ (1, "run") ] "x");
          blk "run"
            [ hostv "clk" "host-clock"; set "r8" (lcl "clk") ]
            (br (fld "r8" ==% c 0) "chk" "x");
          blk "chk" [] (br (fld "r8" ==% c 1) "done" "x");
          cmd_end "done" [] (goto "x");
          exit_ "x" [];
        ];
    ]

let bref label = { Program.handler = "wr"; label }

let mini_spec () =
  let spec =
    Sedspec.Es_cfg.create ~program:mini_program ~selection:empty_selection
  in
  let imp label ~visits ~taken ~not_taken ~cases ~succs =
    Sedspec.Es_cfg.import_node spec (bref label) ~visits ~taken ~not_taken
      ~cases ~itargets:[]
      ~succs:(List.map bref succs)
  in
  imp "e" ~visits:5 ~taken:0 ~not_taken:0 ~cases:[] ~succs:[ "d" ];
  imp "d" ~visits:5 ~taken:0 ~not_taken:0
    ~cases:[ (1L, "run") ]
    ~succs:[ "run"; "x" ];
  (* Balanced conditional, but host-synced: a sync point. *)
  imp "run" ~visits:3 ~taken:2 ~not_taken:1 ~cases:[] ~succs:[ "chk"; "x" ];
  (* One-sided conditional: the not-taken direction was never observed. *)
  imp "chk" ~visits:2 ~taken:2 ~not_taken:0 ~cases:[] ~succs:[ "done" ];
  imp "done" ~visits:2 ~taken:0 ~not_taken:0 ~cases:[] ~succs:[ "x" ];
  imp "x" ~visits:5 ~taken:0 ~not_taken:0 ~cases:[] ~succs:[];
  spec

let golden =
  {|digraph "escfg_mini_fdc" {
  rankdir=TB;
  node [shape=box, fontsize=10];
  "wr_e" [label="wr/e\nvisits=5", shape=ellipse, style=filled, fillcolor=lightblue];
  "wr_d" [label="wr/d\nvisits=5", shape=diamond, style=filled, fillcolor=gold];
  "wr_run" [label="wr/run\nvisits=3\n[sync point]", shape=box, style=filled, fillcolor=white];
  "wr_chk" [label="wr/chk\nvisits=2\n[one-sided]", shape=box, style=filled, fillcolor=white];
  "wr_done" [label="wr/done\nvisits=2", shape=box, style=filled, fillcolor=palegreen];
  "wr_x" [label="wr/x\nvisits=5", shape=ellipse, style=filled, fillcolor=lightgray];
  "wr_e" -> "wr_d";
  "wr_d" -> "wr_run";
  "wr_d" -> "wr_x";
  "wr_run" -> "wr_chk" [label="T:2"];
  "wr_run" -> "wr_x" [label="N:1"];
  "wr_chk" -> "wr_done" [label="T:2"];
  "wr_done" -> "wr_x";
}
|}

let test_golden_dot () =
  Alcotest.(check string) "dot output" golden (Sedspec.Viz.to_dot (mini_spec ()))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_annotations () =
  let dot = Sedspec.Viz.to_dot (mini_spec ()) in
  (* The sync-point marker lands on the host-synced node only. *)
  Alcotest.(check bool) "run is a sync point" true
    (contains dot "wr/run\\nvisits=3\\n[sync point]");
  (* The one-sided marker lands on chk; run's balanced branch gets none. *)
  Alcotest.(check bool) "chk is one-sided" true
    (contains dot "wr/chk\\nvisits=2\\n[one-sided]");
  Alcotest.(check bool) "run is not one-sided" false
    (contains dot "wr/run\\nvisits=3\\n[sync point]\\n[one-sided]");
  (* Branch direction counts annotate the edges. *)
  Alcotest.(check bool) "taken count" true (contains dot "label=\"T:2\"");
  Alcotest.(check bool) "not-taken count" true (contains dot "label=\"N:1\"")

let test_escaping () =
  (* Handler and label names flow into DOT double-quoted strings both as
     node ids and as labels; quotes, backslashes and newlines must all be
     escaped. *)
  let weird = "h\"quote\nline\\slash" in
  let program =
    Program.make ~name:"weird" ~layout
      [
        handler weird ~params:[]
          [ entry "e" [] (goto "x"); exit_ "x" [] ];
      ]
  in
  let spec = Sedspec.Es_cfg.create ~program ~selection:empty_selection in
  Sedspec.Es_cfg.import_node spec
    { Program.handler = weird; label = "e" }
    ~visits:1 ~taken:0 ~not_taken:0 ~cases:[] ~itargets:[] ~succs:[];
  let dot = Sedspec.Viz.to_dot spec in
  Alcotest.(check bool) "quote escaped" true
    (contains dot "h\\\"quote\\nline\\\\slash");
  Alcotest.(check bool) "no raw newline inside a label" false
    (contains dot "h\"quote\nline");
  (* Sanity: graphviz-breaking raw quotes never appear unescaped; every
     quote is either a string delimiter or preceded by a backslash. *)
  String.iteri
    (fun i ch ->
      if ch = '\n' && i > 0 then
        Alcotest.(check bool) "newlines only between statements" true
          (let prev = dot.[i - 1] in
           prev = '{' || prev = ';' || prev = '}'))
    dot

let test_save_dot_roundtrip () =
  let path = Filename.temp_file "sedspec_viz" ".dot" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let spec = mini_spec () in
      Sedspec.Viz.save_dot spec path;
      let ic = open_in path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "file matches to_dot" (Sedspec.Viz.to_dot spec) s)

let () =
  Alcotest.run "viz"
    [
      ( "to_dot",
        [
          Alcotest.test_case "golden mini-fdc" `Quick test_golden_dot;
          Alcotest.test_case "annotations" `Quick test_annotations;
          Alcotest.test_case "escaping" `Quick test_escaping;
          Alcotest.test_case "save_dot" `Quick test_save_dot_roundtrip;
        ] );
    ]
